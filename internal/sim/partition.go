// Partitioned parallel dispatch: a conservative (CMB-style) sharded mode
// for the kernel.
//
// EnableSharding splits the kernel into partitions — by convention one per
// pset, the unit the machine model's I/O tree already isolates — each with
// its own calendar queue, sequence counter, clock, and xrand stream.
// Events whose effects stay inside one partition (intra-pset MPI traffic,
// same-node wakeups, per-rank compute) live in that partition's calendar
// and are dispatched by parallel lane workers inside conservative windows.
// Everything that touches shared simulation state — storage, collectives,
// cross-pset fabric transfers — runs on a single globally-ordered
// "exclusive" lane backed by the kernel's original calendar, entered by
// processes through EnterShared/ExitShared.
//
// Ordering model. Every event carries a key (t, part, localSeq) packed
// into its sequence word (see partShift): the exclusive lane's events keep
// part bits of zero, so the untouched eventLess comparator already yields
// the sharded tie-break order, and serial mode is bit-for-bit the
// historical kernel. The coordinator alternates two phases:
//
//   - Exclusive: while the globally minimal key belongs to the shared
//     calendar or to a suspended shared section, dispatch exactly in key
//     order, one item at a time, with the same baton protocol as the
//     serial kernel. This reproduces the serial kernel's semantics for
//     every event that can observe shared state.
//
//   - Window: when the minimal key is a partition-local event, all lanes
//     with work below bound = min(G + L, next exclusive key) run in
//     parallel, where G is the global minimum and L the machine-derived
//     lookahead (the minimum virtual latency any cross-partition effect
//     pays). Lane events of different partitions touch disjoint state, so
//     their relative order is unobservable; within a lane the order is
//     exactly the serial projection.
//
// A process that reaches shared state from a lane (EnterShared) suspends
// its whole lane and re-runs on the exclusive lane at its segment-origin
// key — the position where the serial kernel would have dispatched the
// same code — which is what makes sharded runs byte-identical to serial
// ones (pinned by goldens in internal/exp). Cross-partition events posted
// from lane context travel through typed, timestamped mailboxes (Post) and
// must be at least the lookahead in the future; the exclusive lane may
// address any partition directly because all lanes are quiescent there.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
	"repro/internal/xrand"
)

// partShift packs a partition tag into bits [40,56) of an event's sequence
// word, below the trace-layer bits. Partition p's events carry tag p+1, so
// the exclusive lane (tag 0) wins timestamp ties — and the serial kernel's
// plain counter, which stays far below 1<<40, is unchanged. The packing
// means eventLess's (t, seq&seqMask) compare is (t, partition, local seq)
// lexicographic order with no comparator change.
const (
	partShift = 40
	localMask = 1<<partShift - 1
	// maxParts bounds the partition count so the tag fits its field.
	maxParts = 1<<(layerShift-partShift) - 1
)

// advRec is one clock-advance attribution record: a lane (or the exclusive
// dispatcher) moved its clock to t on behalf of layer. Per-stream logs are
// merged at the end of the run and replayed against a single global clock,
// which restores the telescoping property — attributed layer time sums
// exactly to the makespan — that independent per-lane clocks break.
type advRec struct {
	t     float64
	layer trace.Layer
}

// pendReq is a suspended shared section: process p reached EnterShared
// from its lane and waits to re-run on the exclusive lane at its
// segment-origin key (t, chain) — the dispatch position where the serial
// kernel would have executed the same code inline. node is the segment's
// chainNode (the admission adopts it so inserts before and after the
// suspension share one origin) and nextIdx the surviving insert rank.
type pendReq struct {
	t       float64
	node    *chainNode
	nextIdx uint64
	p       *Proc
}

// xmsg is a typed cross-partition mailbox entry: an event posted from one
// partition's lane into another partition, routed at the window join. The
// origin-chain stamp is taken at Post time in the sender's context — the
// reference kernel inserts the event there, not at the join.
type xmsg struct {
	to     int
	t      float64
	h      Hook
	parent *chainNode
	idx    uint64
}

// partition is one shard of the kernel: a private calendar, sequence
// counter, clock, and RNG stream, plus the lane bookkeeping.
type partition struct {
	idx int
	cal calQueue
	seq uint64  // local sequence counter (low partShift bits of keys)
	now float64 // lane clock: the last local event time processed
	rng *xrand.RNG

	active bool          // a lane worker is currently running this partition
	bound  event         // lane may dispatch strictly below this key (h nil)
	mainCh chan struct{} // baton back to the lane worker frame
	ctx    chainCtx      // origin-chain context of the running segment
	nsusp  int           // suspended shared sections (0 or 1)
	pend   []pendReq // suspensions, collected by the coordinator at join
	outbox []xmsg    // cross-partition mailbox, drained at join

	procs   int // live processes owned by this partition
	nparked int
	reg     []*Proc

	nwoken uint64
	ndisp  uint64
	advLog []advRec // clock-advance attributions (tracing only)
	layer  trace.Layer
	rec    *trace.Recorder // per-partition recorder (tracing only, lazy)

	heapPos int // index in the coordinator's head heap, -1 if absent
}

// shard holds the kernel's sharded-mode state.
type shard struct {
	parts     []*partition
	lookahead float64 // min virtual latency of any cross-partition effect
	workers   int     // lane worker goroutines per window
	inWindow  bool    // lanes are (or may be) running concurrently
	heap      []*partition
	pends     []pendReq  // pending shared sections, min-heap by key
	curPart   *partition // lane running in the coordinator goroutine, if any
	advClock  float64    // global attribution replay frontier (tracing only)
}

// Sharded reports whether the kernel runs in partitioned mode.
func (k *Kernel) Sharded() bool { return k.sh != nil }

// NumPartitions returns the partition count, 0 in serial mode.
func (k *Kernel) NumPartitions() int {
	if k.sh == nil {
		return 0
	}
	return len(k.sh.parts)
}

// EnableSharding switches the kernel into partitioned mode with nparts
// partitions, at most workers lane goroutines per window, and the given
// conservative lookahead (seconds; the minimum virtual latency any
// cross-partition effect pays, see the machine package's Lookahead). Each
// partition gets an independent xrand stream split from seed. Must be
// called before Run and before any process is spawned; events already
// scheduled stay on the shared (exclusive) calendar. When a trace recorder
// is attached the window workers are capped at one so instrumented model
// layers may share recorders; dispatch order is identical either way.
func (k *Kernel) EnableSharding(nparts, workers int, lookahead float64, seed uint64) {
	if k.running {
		panic("sim: EnableSharding while running")
	}
	if k.sh != nil {
		panic("sim: EnableSharding called twice")
	}
	if len(k.reg) > 0 {
		panic("sim: EnableSharding after processes were spawned")
	}
	if nparts < 1 || nparts > maxParts {
		panic(fmt.Sprintf("sim: partition count %d out of range [1,%d]", nparts, maxParts))
	}
	if !(lookahead > 0) {
		panic(fmt.Sprintf("sim: lookahead must be positive, got %v", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	if k.rec != nil {
		workers = 1
	}
	root := xrand.New(seed)
	sh := &shard{lookahead: lookahead, workers: workers}
	sh.parts = make([]*partition, nparts)
	for i := range sh.parts {
		pt := &partition{
			idx:     i,
			now:     k.now,
			rng:     root.Split(),
			mainCh:  make(chan struct{}),
			heapPos: -1,
		}
		pt.cal.init()
		pt.ctx.initRoot()
		sh.parts[i] = pt
	}
	k.ctx.initRoot()
	k.sh = sh
}

// Lookahead returns the configured conservative lookahead, 0 when serial.
func (k *Kernel) Lookahead() float64 {
	if k.sh == nil {
		return 0
	}
	return k.sh.lookahead
}

// PartRNG returns partition part's private xrand stream, so partitioned
// model components can draw randomness from lane context without touching
// a shared stream. Panics in serial mode.
func (k *Kernel) PartRNG(part int) *xrand.RNG {
	return k.sh.parts[part].rng
}

// PartNow returns partition part's clock — the correct notion of "now" for
// code running on that partition's lane. Serial mode returns the kernel
// clock.
func (k *Kernel) PartNow(part int) float64 {
	if k.sh == nil {
		return k.now
	}
	return k.sh.parts[part].now
}

// PartRecorder returns the trace recorder lane code of partition part must
// emit to: the partition's private recorder in sharded mode (merged
// deterministically into the main recorder when the run ends), the
// kernel's recorder otherwise. Nil when tracing is off.
func (k *Kernel) PartRecorder(part int) *trace.Recorder {
	if k.sh == nil || k.rec == nil {
		return k.rec
	}
	pt := k.sh.parts[part]
	if pt.rec == nil {
		pt.rec = &trace.Recorder{MaxEvents: k.rec.MaxEvents}
	}
	return pt.rec
}

// GoPart spawns fn as a process owned by partition part: its resumes live
// in that partition's calendar and run on its lane. In serial mode (or
// with part < 0) it is exactly Go.
func (k *Kernel) GoPart(part int, name string, fn func(p *Proc)) *Proc {
	if k.sh == nil || part < 0 {
		return k.Go(name, fn)
	}
	pt := k.sh.parts[part]
	p := &Proc{k: k, part: pt, name: name, ch: make(chan struct{})}
	pt.procs++
	pt.reg = append(pt.reg, p)
	go func() {
		<-p.ch
		fn(p)
		p.done = true
		pt.procs--
		k.sdispatchEnd(p)
	}()
	k.AfterProc(0, p)
	return p
}

// Post schedules h to fire at absolute time t in partition to, from lane
// context of partition from: the typed cross-partition mailbox. The entry
// is held in the sender's outbox and routed at the window join, so t must
// be at least the lookahead past the sender's clock — the CMB condition
// that makes it impossible for the target lane to have advanced past t.
// From exclusive context (or serial mode) it degenerates to AtHookPart.
func (k *Kernel) Post(from, to int, t float64, h Hook) {
	if k.sh == nil {
		k.insert(t, h)
		return
	}
	src := k.sh.parts[from]
	if !src.active {
		k.AtHookPart(to, t, h)
		return
	}
	if to == from {
		k.insertLocal(src, t, h)
		return
	}
	if t < src.now+k.sh.lookahead {
		panic(fmt.Sprintf("sim: cross-partition post at %v violates lookahead %v from clock %v",
			t, k.sh.lookahead, src.now))
	}
	parent, idx := src.ctx.stamp()
	src.outbox = append(src.outbox, xmsg{to: to, t: t, h: h, parent: parent, idx: idx})
}

// AtHookPart schedules h at absolute time t in partition part. From the
// partition's own lane this is a local insert; from exclusive context it
// addresses the partition directly (all lanes are quiescent), asserting
// the partition's clock has not passed t. Serial mode ignores part.
func (k *Kernel) AtHookPart(part int, t float64, h Hook) {
	if k.sh == nil {
		k.insert(t, h)
		return
	}
	k.insertLocal(k.sh.parts[part], t, h)
}

// AfterHookPart schedules h d seconds past partition part's clock.
func (k *Kernel) AfterHookPart(part int, d float64, h Hook) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if k.sh == nil {
		k.insert(k.now+d, h)
		return
	}
	pt := k.sh.parts[part]
	k.insertLocal(pt, pt.now+d, h)
}

// AfterPart schedules fn d seconds past partition part's clock.
func (k *Kernel) AfterPart(part int, d float64, fn func()) {
	k.AfterHookPart(part, d, funcHook(fn))
}

// AtHookCtx schedules h at absolute time t on the calendar owned by the
// execution context currently driving p: p's partition while that lane is
// running a window (the caller then is that lane — deliveries and wakeups
// always target objects of the partition being dispatched), the shared
// calendar otherwise. One call site is thereby correct from lane,
// exclusive, and serial contexts alike.
func (k *Kernel) AtHookCtx(p *Proc, t float64, h Hook) {
	if k.sh == nil {
		k.insert(t, h)
		return
	}
	if pt := p.part; pt != nil && pt.active {
		k.insertLocal(pt, t, h)
		return
	}
	k.insertShared(t, h)
}

// AfterHookCtx schedules h d seconds past the clock of the execution
// context currently driving p (see AtHookCtx).
func (k *Kernel) AfterHookCtx(p *Proc, d float64, h Hook) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if k.sh == nil {
		k.insert(k.now+d, h)
		return
	}
	if pt := p.part; pt != nil && pt.active {
		k.insertLocal(pt, pt.now+d, h)
		return
	}
	k.insertShared(k.now+d, h)
}

// insertLocal places an event in a partition's calendar with a key packed
// from the partition tag and its local sequence counter, stamped with the
// origin chain of the inserting context: the partition's own running
// segment from lane context, the exclusive segment otherwise.
func (k *Kernel) insertLocal(pt *partition, t float64, h Hook) {
	var parent *chainNode
	var idx uint64
	if pt.active {
		parent, idx = pt.ctx.stamp()
	} else {
		parent, idx = k.ctx.stamp()
	}
	k.insertLocalKeyed(pt, t, h, parent, idx)
}

// insertLocalKeyed is insertLocal with the origin-chain stamp supplied by
// the caller — the mailbox join route, where the stamp was taken at Post
// time in the sender's context.
func (k *Kernel) insertLocalKeyed(pt *partition, t float64, h Hook, parent *chainNode, idx uint64) {
	if t < pt.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before partition %d clock %v", t, pt.idx, pt.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	pt.seq++
	if pt.seq > localMask {
		panic("sim: partition sequence counter overflow")
	}
	lay := k.layer
	if pt.active {
		lay = pt.layer
	}
	pt.cal.push(event{t: t, seq: pt.seq | uint64(pt.idx+1)<<partShift | uint64(lay)<<layerShift, h: h,
		parent: parent, idx: idx})
	if !pt.active {
		// Exclusive context: the lane head may have moved; keep the
		// coordinator's heap current. Lane context defers to the join.
		k.heapFix(pt)
	}
}

// insertShared places an event in the shared (exclusive) calendar.
func (k *Kernel) insertShared(t float64, h Hook) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	if k.sh.inWindow || k.sh.curPart != nil {
		panic("sim: un-partitioned insert from lane context; use AtHookPart or Post")
	}
	k.seq++
	if k.seq > localMask {
		panic("sim: shared sequence counter overflow")
	}
	parent, idx := k.ctx.stamp()
	k.cal.push(event{t: t, seq: k.seq | uint64(k.layer)<<layerShift, h: h, parent: parent, idx: idx})
}

// insertProcSharded routes a process resume: exclusive-lane processes and
// processes inside shared sections resume on the exclusive lane (so an
// in-section wake — a barrier release, a commit completion — can never
// land in a partition's past); everything else resumes in its partition.
func (k *Kernel) insertProcSharded(t float64, p *Proc) {
	if p.part == nil || p.sharedDepth > 0 {
		k.insertShared(t, p)
		return
	}
	k.insertLocal(p.part, t, p)
}

// ---- coordinator head heap -------------------------------------------------
//
// A positional binary min-heap over partitions keyed by their calendar
// heads, so the coordinator and the exclusive fast paths find the minimal
// partition-local key in O(1) and maintain it in O(log P). Lanes mutate
// their own calendars during a window; the coordinator refreshes their
// entries at the join.

func (k *Kernel) heapLess(a, b *partition) bool {
	ea, _ := a.cal.peek()
	eb, _ := b.cal.peek()
	return keyLess(ea, eb)
}

func (k *Kernel) heapSwap(i, j int) {
	h := k.sh.heap
	h[i], h[j] = h[j], h[i]
	h[i].heapPos = i
	h[j].heapPos = j
}

func (k *Kernel) heapUp(i int) {
	h := k.sh.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !k.heapLess(h[i], h[parent]) {
			break
		}
		k.heapSwap(i, parent)
		i = parent
	}
}

func (k *Kernel) heapDown(i int) {
	h := k.sh.heap
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && k.heapLess(h[l], h[small]) {
			small = l
		}
		if r < len(h) && k.heapLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		k.heapSwap(i, small)
		i = small
	}
}

// heapFix re-sites pt after its head changed (or appeared / vanished).
func (k *Kernel) heapFix(pt *partition) {
	sh := k.sh
	_, has := pt.cal.peek()
	if pt.heapPos < 0 {
		if !has {
			return
		}
		pt.heapPos = len(sh.heap)
		sh.heap = append(sh.heap, pt)
		k.heapUp(pt.heapPos)
		return
	}
	if !has {
		i := pt.heapPos
		last := len(sh.heap) - 1
		k.heapSwap(i, last)
		sh.heap = sh.heap[:last]
		pt.heapPos = -1
		if i < last {
			k.heapDown(i)
			k.heapUp(i)
		}
		return
	}
	k.heapDown(pt.heapPos)
	k.heapUp(pt.heapPos)
}

// heapMin returns the minimal partition head key, if any partition has
// pending events.
func (k *Kernel) heapMin() (event, *partition, bool) {
	if len(k.sh.heap) == 0 {
		return event{}, nil, false
	}
	pt := k.sh.heap[0]
	ev, _ := pt.cal.peek()
	return ev, pt, true
}

// ---- pending shared sections ----------------------------------------------

func pendLess(a, b pendReq) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return chainLess(a.node.parent, a.node.idx, b.node.parent, b.node.idx)
}

func (k *Kernel) pendPush(r pendReq) {
	sh := k.sh
	sh.pends = append(sh.pends, r)
	i := len(sh.pends) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pendLess(sh.pends[i], sh.pends[parent]) {
			break
		}
		sh.pends[i], sh.pends[parent] = sh.pends[parent], sh.pends[i]
		i = parent
	}
}

func (k *Kernel) pendPop() pendReq {
	sh := k.sh
	top := sh.pends[0]
	last := len(sh.pends) - 1
	sh.pends[0] = sh.pends[last]
	sh.pends = sh.pends[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && pendLess(sh.pends[l], sh.pends[small]) {
			small = l
		}
		if r < last && pendLess(sh.pends[r], sh.pends[small]) {
			small = r
		}
		if small == i {
			break
		}
		sh.pends[i], sh.pends[small] = sh.pends[small], sh.pends[i]
		i = small
	}
	return top
}

// xMin returns the minimal exclusive-lane key: the shared calendar head or
// the earliest pending shared section. kind: 0 none, 1 shared event,
// 2 pending section.
func (k *Kernel) xMin() (event, int) {
	ev, ok := k.cal.peek()
	kind := 0
	if ok {
		kind = 1
	}
	if len(k.sh.pends) > 0 {
		p := k.sh.pends[0]
		// The pend's key is its segment-origin event's key: the position
		// where the serial kernel dispatched the resume that led here.
		pk := event{t: p.t, parent: p.node.parent, idx: p.node.idx}
		if kind == 0 || keyLess(pk, ev) {
			return pk, 2
		}
	}
	return ev, kind
}

// noEarlierExclusive reports whether the whole simulation holds no pending
// item at or before t — the sharded analogue of the serial Sleep fast
// path's single peek. Must only be called from exclusive context (lanes
// quiescent) so the heap and pend state are stable.
func (k *Kernel) noEarlierExclusive(t float64) bool {
	if ev, ok := k.cal.peek(); ok && ev.t <= t {
		return false
	}
	if len(k.sh.pends) > 0 && k.sh.pends[0].t <= t {
		return false
	}
	if ev, _, ok := k.heapMin(); ok && ev.t <= t {
		return false
	}
	return true
}

// ---- sharded run loop -------------------------------------------------------

// runSharded is the coordinator: it alternates exclusive dispatch (shared
// events and suspended sections, in exact global key order) with parallel
// lane windows, until nothing remains within the horizon.
func (k *Kernel) runSharded() {
	sh := k.sh
	// Adopt any pre-run partition inserts (process spawns).
	for _, pt := range sh.parts {
		k.heapFix(pt)
	}
	for iter := uint64(0); ; iter++ {
		if iter&255 == 0 && k.chainMade() > chainRerootGoal {
			// Quiescent point: no lane running, no process holding the
			// baton. Compact the origin chains before they accumulate.
			k.rerootChains()
		}
		xk, xkind := k.xMin()
		pk, ppt, pok := k.heapMin()
		if xkind != 0 && (!pok || !keyLess(pk, xk)) {
			if xk.t > k.horizon {
				return
			}
			if !k.stepExclusive(xkind) {
				continue
			}
			// A process holds the baton; wait for it to hand back.
			<-k.mainCh
			continue
		}
		if !pok || pk.t > k.horizon {
			return
		}
		if ppt.nsusp > 0 {
			// Unreachable: a suspended lane's remaining keys all exceed
			// its pending section's key, so the section won above.
			panic("sim: suspended partition holds the global minimum")
		}
		k.runWindow(pk, xk, xkind)
	}
}

// stepExclusive dispatches one exclusive item (the caller established it
// is the global minimum and within the horizon). Returns true when a
// process now holds the baton, false when the item was a plain hook fired
// inline.
func (k *Kernel) stepExclusive(xkind int) bool {
	if xkind == 2 {
		req := k.pendPop()
		k.ctx.adopt(req.node, req.nextIdx)
		pt := req.p.part
		pt.nsusp--
		// The process continues at its own (lane) clock; the window bound
		// guaranteed no exclusive item in between, so time is monotone.
		if pt.now > k.now {
			k.now = pt.now
		}
		k.nwoken++
		req.p.ch <- struct{}{}
		return true
	}
	ev := k.cal.pop()
	k.ctx.begin(ev.parent, ev.t, ev.idx)
	if k.rec != nil {
		k.observeSharded(ev)
	}
	k.now = ev.t
	p, isProc := ev.h.(*Proc)
	if !isProc {
		ev.h.Fire()
		return false
	}
	if p.done {
		panic("sim: resuming finished process " + p.name)
	}
	if p.part != nil && ev.t > p.part.now {
		// An exclusive resume moves the owning partition's clock too, so
		// the process's later lane-local inserts are causally sound.
		p.part.now = ev.t
	}
	k.nwoken++
	p.ch <- struct{}{}
	return true
}

// observeSharded logs an exclusive dispatch's clock-advance attribution
// into the shared advance log (merged and replayed at the end of the run)
// and adopts the popped event's layer, mirroring the serial observe.
func (k *Kernel) observeSharded(ev event) {
	lay := trace.Layer(ev.seq >> layerShift)
	if ev.t > k.now {
		k.advLog = append(k.advLog, advRec{t: ev.t, layer: lay})
	}
	k.layer = lay
	k.ndisp++
}

// runWindow computes the conservative bound and runs every eligible lane
// below it, then joins: drains mailboxes, collects suspensions, and
// refreshes the head heap.
func (k *Kernel) runWindow(pk, xk event, xkind int) {
	sh := k.sh
	// The zero chain stamp (parent nil, idx 0) precedes every real event
	// at the bound's own time, so "strictly below bound" excludes it.
	bound := event{t: pk.t + sh.lookahead}
	if xkind != 0 && keyLess(xk, bound) {
		bound = xk
	}
	if bound.t > k.horizon {
		// The lane condition is strictly-below-bound, so nudging the cap
		// one ulp past the horizon makes the horizon itself inclusive,
		// matching the serial dispatch loops.
		bound = event{t: math.Nextafter(k.horizon, math.Inf(1))}
	}
	var active []*partition
	for _, pt := range sh.heap {
		if pt.nsusp > 0 {
			continue
		}
		if ev, ok := pt.cal.peek(); ok && keyLess(ev, bound) {
			pt.bound = bound
			active = append(active, pt)
		}
	}
	if len(active) == 0 {
		panic("sim: window with no eligible lane")
	}
	sort.Slice(active, func(i, j int) bool { return active[i].idx < active[j].idx })
	if len(active) == 1 || sh.workers == 1 {
		for _, pt := range active {
			sh.curPart = pt
			k.runLane(pt)
		}
		sh.curPart = nil
	} else {
		sh.inWindow = true
		n := sh.workers
		if n > len(active) {
			n = len(active)
		}
		done := make(chan struct{}, n)
		for w := 0; w < n; w++ {
			go func(w int) {
				for i := w; i < len(active); i += n {
					k.runLane(active[i])
				}
				done <- struct{}{}
			}(w)
		}
		for w := 0; w < n; w++ {
			<-done
		}
		sh.inWindow = false
	}
	// Join: route mailboxes (deterministic order: by source partition,
	// then emission order), collect suspended sections, refresh heads.
	for _, pt := range active {
		for _, m := range pt.outbox {
			k.insertLocalKeyed(sh.parts[m.to], m.t, m.h, m.parent, m.idx)
		}
		pt.outbox = pt.outbox[:0]
		for _, req := range pt.pend {
			k.pendPush(req)
		}
		pt.pend = pt.pend[:0]
		k.heapFix(pt)
	}
}

// runLane dispatches one partition's events strictly below its bound. It
// is the lane-side analogue of dispatchMain: hooks fire inline, process
// resumes hand the baton over and wait for it back on the lane channel.
func (k *Kernel) runLane(pt *partition) {
	pt.active = true
	for pt.nsusp == 0 {
		ev, ok := pt.cal.peek()
		if !ok || !keyLess(ev, pt.bound) {
			break
		}
		pt.cal.pop()
		pt.ctx.begin(ev.parent, ev.t, ev.idx)
		if k.rec != nil {
			pt.observe(ev)
		}
		pt.now = ev.t
		p, isProc := ev.h.(*Proc)
		if !isProc {
			ev.h.Fire()
			continue
		}
		if p.done {
			panic("sim: resuming finished process " + p.name)
		}
		pt.nwoken++
		p.ch <- struct{}{}
		<-pt.mainCh
	}
	pt.active = false
}

// observe is the lane-side tracing half of a dispatch: log the advance for
// the merge replay and adopt the popped event's layer.
func (pt *partition) observe(ev event) {
	lay := trace.Layer(ev.seq >> layerShift)
	if ev.t > pt.now {
		pt.advLog = append(pt.advLog, advRec{t: ev.t, layer: lay})
	}
	pt.layer = lay
	pt.ndisp++
}

// sdispatchLane continues lane dispatch from a process that yielded on its
// lane: pop further local events below the bound, take back its own
// resume, or hand the baton on and wait.
func (k *Kernel) sdispatchLane(self *Proc) {
	pt := self.part
	for {
		ev, ok := pt.cal.peek()
		if !ok || !keyLess(ev, pt.bound) {
			pt.mainCh <- struct{}{}
			<-self.ch
			return
		}
		pt.cal.pop()
		pt.ctx.begin(ev.parent, ev.t, ev.idx)
		if k.rec != nil {
			pt.observe(ev)
		}
		pt.now = ev.t
		p, isProc := ev.h.(*Proc)
		if !isProc {
			ev.h.Fire()
			continue
		}
		if p == self {
			return
		}
		if p.done {
			panic("sim: resuming finished process " + p.name)
		}
		pt.nwoken++
		p.ch <- struct{}{}
		<-self.ch
		return
	}
}

// canExclusive reports whether the exclusive item xk may dispatch now: it
// exists, lies within the horizon, and no partition head precedes it.
func (k *Kernel) canExclusive(xk event, xkind int) bool {
	if xkind == 0 || xk.t > k.horizon {
		return false
	}
	pk, _, pok := k.heapMin()
	return !pok || !keyLess(pk, xk)
}

// sdispatchX continues exclusive dispatch from a process that yielded on
// the exclusive lane. It hands control back to the coordinator when the
// globally minimal key is partition-local (a window is due) or everything
// within the horizon has drained.
func (k *Kernel) sdispatchX(self *Proc) {
	for {
		xk, xkind := k.xMin()
		if !k.canExclusive(xk, xkind) {
			k.mainCh <- struct{}{}
			<-self.ch
			return
		}
		if xkind == 2 {
			req := k.pendPop()
			k.ctx.adopt(req.node, req.nextIdx)
			pt := req.p.part
			pt.nsusp--
			if pt.now > k.now {
				k.now = pt.now
			}
			k.nwoken++
			req.p.ch <- struct{}{}
			<-self.ch
			return
		}
		ev := k.cal.pop()
		k.ctx.begin(ev.parent, ev.t, ev.idx)
		if k.rec != nil {
			k.observeSharded(ev)
		}
		k.now = ev.t
		p, isProc := ev.h.(*Proc)
		if !isProc {
			ev.h.Fire()
			continue
		}
		if p.part != nil && ev.t > p.part.now {
			// An exclusive resume moves the owning partition's clock too —
			// including a self-resume, or the process's own Now() would lag
			// its kernel clock for the rest of the section.
			p.part.now = ev.t
		}
		if p == self {
			return
		}
		if p.done {
			panic("sim: resuming finished process " + p.name)
		}
		k.nwoken++
		p.ch <- struct{}{}
		<-self.ch
		return
	}
}

// sdispatchEnd releases the baton from a process whose function returned,
// in whichever context it ended.
func (k *Kernel) sdispatchEnd(p *Proc) {
	if p.part != nil && p.part.active {
		pt := p.part
		for {
			ev, ok := pt.cal.peek()
			if !ok || !keyLess(ev, pt.bound) {
				pt.mainCh <- struct{}{}
				return
			}
			pt.cal.pop()
			pt.ctx.begin(ev.parent, ev.t, ev.idx)
			if k.rec != nil {
				pt.observe(ev)
			}
			pt.now = ev.t
			q, isProc := ev.h.(*Proc)
			if !isProc {
				ev.h.Fire()
				continue
			}
			if q.done {
				panic("sim: resuming finished process " + q.name)
			}
			pt.nwoken++
			q.ch <- struct{}{}
			return
		}
	}
	for {
		xk, xkind := k.xMin()
		if !k.canExclusive(xk, xkind) {
			k.mainCh <- struct{}{}
			return
		}
		if xkind == 2 {
			req := k.pendPop()
			k.ctx.adopt(req.node, req.nextIdx)
			pt := req.p.part
			pt.nsusp--
			if pt.now > k.now {
				k.now = pt.now
			}
			k.nwoken++
			req.p.ch <- struct{}{}
			return
		}
		ev := k.cal.pop()
		k.ctx.begin(ev.parent, ev.t, ev.idx)
		if k.rec != nil {
			k.observeSharded(ev)
		}
		k.now = ev.t
		q, isProc := ev.h.(*Proc)
		if !isProc {
			ev.h.Fire()
			continue
		}
		if q.done {
			panic("sim: resuming finished process " + q.name)
		}
		if q.part != nil && ev.t > q.part.now {
			q.part.now = ev.t
		}
		k.nwoken++
		q.ch <- struct{}{}
		return
	}
}

// finishSharded raises every clock to the run's end and, when tracing,
// merges the per-partition recorders and advance logs into the main
// recorder so attributed layer time again sums exactly to the makespan.
// Safe to call after every Run/RunUntil: the replay frontier persists.
func (k *Kernel) finishSharded() {
	sh := k.sh
	for _, pt := range sh.parts {
		if pt.now > k.now {
			k.now = pt.now
		}
	}
	for _, pt := range sh.parts {
		if pt.now < k.now {
			pt.now = k.now
		}
	}
	if k.rec == nil {
		return
	}
	// Replay every advance record against one global clock, in key-order
	// convention (exclusive stream first at ties, then partitions
	// ascending). Each record charges its layer for the portion of global
	// time it newly uncovered, so the totals telescope to the final clock.
	streams := make([][]advRec, 0, len(sh.parts)+1)
	streams = append(streams, k.advLog)
	for _, pt := range sh.parts {
		streams = append(streams, pt.advLog)
	}
	pos := make([]int, len(streams))
	g := sh.advClock
	for {
		best := -1
		for i, s := range streams {
			if pos[i] >= len(s) {
				continue
			}
			if best < 0 || s[pos[i]].t < streams[best][pos[best]].t {
				best = i
			}
		}
		if best < 0 {
			break
		}
		r := streams[best][pos[best]]
		pos[best]++
		if r.t > g {
			k.rec.Advance(r.layer, g, r.t)
			g = r.t
		}
	}
	sh.advClock = g
	k.advLog = k.advLog[:0]
	recs := make([]*trace.Recorder, 0, len(sh.parts))
	for _, pt := range sh.parts {
		if pt.rec != nil {
			recs = append(recs, pt.rec)
		}
		pt.advLog = pt.advLog[:0]
	}
	trace.MergeInto(k.rec, recs...)
	for _, pt := range sh.parts {
		pt.rec = nil
	}
}

// ---- sharded stat aggregation ----------------------------------------------

func (k *Kernel) shardedEvents() uint64 {
	n := k.seq
	for _, pt := range k.sh.parts {
		n += pt.seq
	}
	return n
}

func (k *Kernel) shardedWoken() uint64 {
	n := k.nwoken
	for _, pt := range k.sh.parts {
		n += pt.nwoken
	}
	return n
}

func (k *Kernel) shardedDispatched() uint64 {
	n := k.ndisp
	for _, pt := range k.sh.parts {
		n += pt.ndisp
	}
	return n
}

func (k *Kernel) shardedPending() int {
	n := k.cal.len()
	for _, pt := range k.sh.parts {
		n += pt.cal.len()
	}
	return n
}

// shardedDeadlock aggregates parked processes across the exclusive lane
// and every partition, recording each process's partition.
func (k *Kernel) shardedDeadlock() error {
	total := k.nparked
	for _, pt := range k.sh.parts {
		total += pt.nparked
	}
	if total == 0 {
		return nil
	}
	names := make([]string, 0, total)
	parts := make(map[string]int, total)
	for _, p := range k.reg {
		if p.parked {
			names = append(names, p.name)
			parts[p.name] = -1
		}
	}
	for _, pt := range k.sh.parts {
		for _, p := range pt.reg {
			if p.parked {
				names = append(names, p.name)
				parts[p.name] = pt.idx
			}
		}
	}
	sort.Strings(names)
	partOf := make([]int, len(names))
	for i, n := range names {
		partOf[i] = parts[n]
	}
	return &DeadlockError{Procs: names, Parts: partOf}
}
