package sim

import (
	"fmt"

	"repro/internal/trace"
)

// Proc is a simulation process: a goroutine that advances virtual time with
// Sleep and blocks on Signals/Resources with Park. Control moves between
// processes under the kernel's baton protocol (see kernel.go): a yielding
// process dispatches further events itself and hands the kernel directly to
// the next process due, over a single unbuffered channel per process.
//
// All Proc methods must be called from the process's own goroutine; all other
// goroutines interact with a process only via Unpark (typically indirectly,
// through Signal and Resource).
type Proc struct {
	k      *Kernel
	name   string
	ch     chan struct{} // resume token; receiving it = owning the kernel
	done   bool
	parked bool

	part        *partition // owning partition in sharded mode, nil otherwise
	sharedDepth int        // EnterShared nesting; > 0 routes resumes exclusively
}

// Go spawns fn as a new process starting at the current simulation time.
// fn runs entirely inside the simulation; when it returns the process ends.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, ch: make(chan struct{})}
	k.procs++
	k.reg = append(k.reg, p)
	go func() {
		<-p.ch
		fn(p)
		p.done = true
		k.procs--
		if k.sh != nil {
			k.sdispatchEnd(p)
			return
		}
		k.dispatchEnd()
	}()
	k.AfterProc(0, p)
	return p
}

// Fire implements Hook so a *Proc can sit directly in an event. The dispatch
// loops recognize processes by type assertion and hand them the baton instead
// of calling Fire; reaching it means an event bypassed dispatch.
func (p *Proc) Fire() { panic("sim: Proc.Fire called outside dispatch") }

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulation time as seen by this process: its
// partition's clock for a partitioned process (the two coincide while it
// runs a shared section), the kernel clock otherwise.
func (p *Proc) Now() float64 {
	if p.part != nil {
		return p.part.now
	}
	return p.k.now
}

// Part returns the process's owning partition index, -1 when it runs on
// the shared lane or the kernel is serial.
func (p *Proc) Part() int {
	if p.part == nil {
		return -1
	}
	return p.part.idx
}

// OnLane reports whether the process is currently executing on its
// partition's lane: partition-owned, outside any shared section, with the
// lane active. Model code uses it to pick lane-private resources (pools,
// scratch) over their globally shared counterparts.
func (p *Proc) OnLane() bool {
	return p.part != nil && p.part.active && p.sharedDepth == 0
}

// Rec returns the trace recorder this process's model code must emit to:
// its partition's recorder in sharded mode, the kernel's otherwise. Nil
// when tracing is off.
func (p *Proc) Rec() *trace.Recorder {
	if p.part != nil {
		return p.k.PartRecorder(p.part.idx)
	}
	return p.k.rec
}

// EnterShared marks the start of a code region that reads or writes state
// outside the process's partition (storage, collectives, cross-pset
// messaging). In sharded mode, when called from the partition's lane, it
// suspends the lane and re-runs the process on the globally-ordered
// exclusive lane at the segment's origin key — exactly where the serial
// kernel would have dispatched this code. Nested calls and serial mode
// are no-ops; every EnterShared must be paired with an ExitShared.
func (p *Proc) EnterShared() {
	p.sharedDepth++
	if p.sharedDepth > 1 {
		return
	}
	k := p.k
	if k.sh == nil {
		return
	}
	pt := p.part
	if pt == nil || !pt.active {
		return // already on the exclusive lane
	}
	pt.nsusp++
	pt.pend = append(pt.pend, pendReq{t: pt.ctx.segT, node: pt.ctx.segNode(), nextIdx: pt.ctx.nextIdx, p: p})
	pt.mainCh <- struct{}{}
	<-p.ch
}

// ExitShared closes an EnterShared region. The process keeps running on
// the exclusive lane until its next yield, whose resume is routed back to
// its partition's calendar.
func (p *Proc) ExitShared() {
	if p.sharedDepth <= 0 {
		panic("sim: ExitShared without EnterShared on " + p.name)
	}
	p.sharedDepth--
}

// Sleep suspends the process for d seconds of simulation time.
//
// Fast path: when no pending event precedes the wake-up time, yielding to the
// kernel would pop exactly this process's resume event and hand control
// straight back, so the process advances the clock itself and keeps running —
// no scheduling, no channel operations, no goroutine switches. This elides
// the entire handoff during serialized phases (one active timeline) and is
// exactly order-preserving: the relative (t, seq) order of all other events
// is untouched.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	k := p.k
	if k.sh != nil {
		p.sleepSharded(d)
		return
	}
	t := k.now + d
	if t <= k.horizon {
		if next, ok := k.cal.peek(); !ok || next.t > t {
			if k.rec != nil && t > k.now {
				// The elided handoff advances the clock without an event;
				// attribute it to the layer that would have tagged one.
				k.rec.Advance(k.layer, k.now, t)
			}
			k.now = t
			return
		}
	}
	k.insert(t, p)
	k.dispatch(p)
}

// sleepSharded is Sleep for the partitioned kernel, with the fast path
// adapted to the context the process runs in.
func (p *Proc) sleepSharded(d float64) {
	k := p.k
	if pt := p.part; pt != nil && pt.active {
		// Lane context: the fast path may advance the lane clock when no
		// local event precedes the wake-up and the wake-up time stays
		// strictly below the window bound. The elided resume still opens a
		// new origin-chain segment (ctx.elide): if the process later
		// suspends into a shared section, it must do so at the key its
		// resume would have held — not at the stale origin of a sleep it
		// skipped — or the exclusive lane would run the section out of
		// global order.
		t := pt.now + d
		if t < pt.bound.t {
			if next, ok := pt.cal.peek(); !ok || next.t > t {
				pt.ctx.elide(t)
				if k.rec != nil && t > pt.now {
					pt.advLog = append(pt.advLog, advRec{t: t, layer: pt.layer})
				}
				pt.now = t
				return
			}
		}
		k.insertLocal(pt, t, p)
		k.sdispatchLane(p)
		return
	}
	// Exclusive context: the fast path must clear every calendar — the
	// shared head, pending sections, and all partition heads — exactly
	// the serial kernel's single-calendar check, split across shards.
	t := k.now + d
	if t <= k.horizon && k.noEarlierExclusive(t) {
		k.ctx.elide(t)
		if k.rec != nil && t > k.now {
			k.advLog = append(k.advLog, advRec{t: t, layer: k.layer})
		}
		k.now = t
		if p.part != nil && t > p.part.now {
			p.part.now = t
		}
		return
	}
	k.insertProcSharded(t, p)
	k.sdispatchX(p)
}

// SleepUntil suspends the process until absolute simulation time t. Times in
// the past (or the present) return immediately without yielding.
func (p *Proc) SleepUntil(t float64) {
	now := p.Now()
	if t <= now {
		return
	}
	p.Sleep(t - now)
}

// Park suspends the process indefinitely until some other party calls
// Unpark. The caller is responsible for having registered itself somewhere
// (a Signal's or Resource's wait list) that will eventually unpark it; the
// kernel reports a deadlock otherwise.
func (p *Proc) Park() {
	p.parked = true
	k := p.k
	if k.sh != nil {
		if p.part != nil {
			p.part.nparked++
		} else {
			k.nparked++
		}
		if p.part != nil && p.part.active {
			k.sdispatchLane(p)
		} else {
			k.sdispatchX(p)
		}
		return
	}
	k.nparked++
	k.dispatch(p)
}

// Unpark schedules a parked process to resume at the current simulation
// time. It panics if the process is not parked — that is always a
// wait-list bookkeeping bug in the caller (for example unparking a process
// whose resume event is already scheduled).
func (p *Proc) Unpark() { p.UnparkAfter(0) }

// UnparkAfter schedules a parked process to resume d seconds from now. It
// lets a waker fold a wake-then-sleep sequence into a single resume when the
// woken process would only burn a fixed delay before touching shared state —
// one handoff instead of two.
func (p *Proc) UnparkAfter(d float64) {
	if !p.parked {
		panic("sim: Unpark of non-parked process " + p.name)
	}
	p.parked = false
	if p.k.sh != nil && p.part != nil {
		p.part.nparked--
	} else {
		p.k.nparked--
	}
	p.k.AfterProc(d, p)
}

// Yield gives other events scheduled at the current instant a chance to run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a broadcast condition: processes Wait on it and a later Fire
// wakes all of them. Once fired, Wait returns immediately. A Signal must
// only be used from inside one simulation.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// Wait blocks the process until the signal fires. Returns immediately if it
// already has.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.Park()
}

// Fire wakes all waiters (in wait order) and makes future Waits return
// immediately. Firing twice panics.
func (s *Signal) Fire() {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fired = true
	for _, p := range s.waiters {
		p.Unpark()
	}
	s.waiters = nil
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Resource is a FIFO resource with fixed capacity (e.g. a server with a
// bounded number of service slots). Processes Acquire a unit, hold it for
// however long they model service taking, and Release it.
//
// The wait queue is a power-of-two ring buffer, so both Acquire and Release
// are O(1) even under the 16K-deep queues a 1PFPP metadata server builds —
// the former slice-shift Release made draining such a queue quadratic.
type Resource struct {
	capacity int
	inUse    int
	ring     []*Proc // waiters; len(ring) is a power of two
	head     int     // index of the longest-waiting process
	qlen     int     // number of waiters
	maxQueue int     // high-water mark of the wait queue, for diagnostics
}

// NewResource returns a resource with the given capacity (> 0).
func NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{capacity: capacity}
}

// Acquire takes one unit, blocking the process FIFO if none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	if r.qlen == len(r.ring) {
		r.grow()
	}
	r.ring[(r.head+r.qlen)&(len(r.ring)-1)] = p
	r.qlen++
	if r.qlen > r.maxQueue {
		r.maxQueue = r.qlen
	}
	p.Park()
}

// grow doubles the ring, unwrapping the live window to the front.
func (r *Resource) grow() {
	size := 2 * len(r.ring)
	if size == 0 {
		size = 8
	}
	ring := make([]*Proc, size)
	for i := 0; i < r.qlen; i++ {
		ring[i] = r.ring[(r.head+i)&(len(r.ring)-1)]
	}
	r.ring = ring
	r.head = 0
}

// Release returns one unit, handing it directly to the longest-waiting
// process if any.
func (r *Resource) Release() {
	if r.qlen > 0 {
		p := r.ring[r.head]
		r.ring[r.head] = nil
		r.head = (r.head + 1) & (len(r.ring) - 1)
		r.qlen--
		p.Unpark() // unit passes directly to p; inUse unchanged
		return
	}
	if r.inUse == 0 {
		panic("sim: Release of idle resource")
	}
	r.inUse--
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return r.qlen }

// MaxQueue reports the highest number of simultaneous waiters observed.
func (r *Resource) MaxQueue() int { return r.maxQueue }
