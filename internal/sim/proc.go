package sim

import "fmt"

// Proc is a simulation process: a goroutine that advances virtual time with
// Sleep and blocks on Signals/Resources with Park. The kernel and all
// processes hand control off explicitly so that exactly one of them runs at
// any moment.
//
// All Proc methods must be called from the process's own goroutine; all other
// goroutines interact with a process only via Unpark (typically indirectly,
// through Signal and Resource).
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{} // kernel -> proc handoff
	yield  chan struct{} // proc -> kernel handoff
	done   bool
	parked bool
}

// Go spawns fn as a new process starting at the current simulation time.
// fn runs entirely inside the simulation; when it returns the process ends.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		p.k.procs--
		p.yield <- struct{}{}
	}()
	k.After(0, func() { p.handoff() })
	return p
}

// handoff transfers control from the kernel to the process until its next
// yield point. Called only from kernel (event) context.
func (p *Proc) handoff() {
	if p.done {
		panic("sim: resuming finished process " + p.name)
	}
	p.resume <- struct{}{}
	<-p.yield
}

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulation time.
func (p *Proc) Now() float64 { return p.k.now }

// Sleep suspends the process for d seconds of simulation time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.k.After(d, func() { p.handoff() })
	p.yield <- struct{}{}
	<-p.resume
}

// SleepUntil suspends the process until absolute simulation time t. Times in
// the past (or the present) return immediately without yielding.
func (p *Proc) SleepUntil(t float64) {
	if t <= p.k.now {
		return
	}
	p.Sleep(t - p.k.now)
}

// Park suspends the process indefinitely until some other party calls
// Unpark. The caller is responsible for having registered itself somewhere
// (a Signal's or Resource's wait list) that will eventually unpark it; the
// kernel reports a deadlock otherwise.
func (p *Proc) Park() {
	p.parked = true
	p.k.parked[p] = struct{}{}
	p.yield <- struct{}{}
	<-p.resume
}

// Unpark schedules a parked process to resume at the current simulation
// time. It panics if the process is not parked — that is always a
// wait-list bookkeeping bug in the caller.
func (p *Proc) Unpark() {
	if !p.parked {
		panic("sim: Unpark of non-parked process " + p.name)
	}
	p.parked = false
	delete(p.k.parked, p)
	p.k.After(0, func() { p.handoff() })
}

// Yield gives other events scheduled at the current instant a chance to run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Signal is a broadcast condition: processes Wait on it and a later Fire
// wakes all of them. Once fired, Wait returns immediately. A Signal must
// only be used from inside one simulation.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// Wait blocks the process until the signal fires. Returns immediately if it
// already has.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.Park()
}

// Fire wakes all waiters (in wait order) and makes future Waits return
// immediately. Firing twice panics.
func (s *Signal) Fire() {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fired = true
	for _, p := range s.waiters {
		p.Unpark()
	}
	s.waiters = nil
}

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Resource is a FIFO resource with fixed capacity (e.g. a server with a
// bounded number of service slots). Processes Acquire a unit, hold it for
// however long they model service taking, and Release it.
type Resource struct {
	capacity int
	inUse    int
	waiters  []*Proc
	maxQueue int // high-water mark of the wait queue, for diagnostics
}

// NewResource returns a resource with the given capacity (> 0).
func NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{capacity: capacity}
}

// Acquire takes one unit, blocking the process FIFO if none is free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
	p.Park()
}

// Release returns one unit, handing it directly to the longest-waiting
// process if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		p.Unpark() // unit passes directly to p; inUse unchanged
		return
	}
	if r.inUse == 0 {
		panic("sim: Release of idle resource")
	}
	r.inUse--
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// MaxQueue reports the highest number of simultaneous waiters observed.
func (r *Resource) MaxQueue() int { return r.maxQueue }
