package sim

import (
	"fmt"
	"testing"
)

// TestRunUntilAcrossBucketBoundaries steps the clock through horizons that
// repeatedly split the calendar's active window, checking that every event
// fires exactly once, in order, within the step that covers it.
func TestRunUntilAcrossBucketBoundaries(t *testing.T) {
	k := NewKernel()
	var fired []float64
	// Microsecond-spaced cluster plus far-out stragglers: the window never
	// covers all of them at once.
	times := []float64{1e-6, 2e-6, 3e-6, 0.5, 0.500001, 2, 7, 7.000001, 40}
	for _, at := range times {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	for _, horizon := range []float64{1e-6, 0.5, 1, 7, 100} {
		before := len(fired)
		k.RunUntil(horizon)
		for _, f := range fired[before:] {
			if f > horizon {
				t.Fatalf("event at %v fired beyond horizon %v", f, horizon)
			}
		}
		if k.Now() != horizon {
			t.Fatalf("clock %v after RunUntil(%v)", k.Now(), horizon)
		}
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d of %d events", len(fired), len(times))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order: %v after %v", fired[i], fired[i-1])
		}
	}
}

// pooledHook records its firing order; the pooled analogue of the closure
// hooks in TestTieBreakBySchedulingOrder.
type pooledHook struct {
	id  int
	out *[]int
}

func (h *pooledHook) Fire() { *h.out = append(*h.out, h.id) }

// TestSameTimestampPooledHooks schedules a large batch of pooled hooks at one
// instant, interleaved with closure events and process resumes, and checks
// strict scheduling order — the tie-break contract under the allocation-free
// AtHook path.
func TestSameTimestampPooledHooks(t *testing.T) {
	k := NewKernel()
	var order []int
	const n = 1000
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			k.AtHook(1.0, &pooledHook{id: i, out: &order})
		} else {
			i := i
			k.At(1.0, func() { order = append(order, i) })
		}
	}
	// Processes sleeping until the same instant: their resumes are scheduled
	// when each first runs (at t=0, in spawn order), so they follow every
	// hook above and keep spawn order among themselves.
	const procs = 100
	for i := 0; i < procs; i++ {
		i := i
		k.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.SleepUntil(1.0)
			order = append(order, n+i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n+procs {
		t.Fatalf("got %d firings, want %d", len(order), n+procs)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("position %d: fired %d (scheduling order violated)", i, id)
		}
	}
}

// TestUnparkResumeAlreadyScheduledPanics checks that unparking a process
// whose resume is already scheduled — a double-wake bookkeeping bug — panics
// rather than corrupting the runnable-set invariant.
func TestUnparkResumeAlreadyScheduledPanics(t *testing.T) {
	k := NewKernel()
	var target *Proc
	target = k.Go("target", func(p *Proc) { p.Park() })
	k.Go("waker", func(p *Proc) {
		p.Yield() // let target park first
		target.Unpark()
		defer func() {
			if recover() == nil {
				t.Error("second Unpark did not panic")
			}
			// Re-park bookkeeping so Run's deadlock accounting stays sane.
			p.Kernel().nparked++
			target.parked = true
		}()
		target.Unpark() // resume already scheduled: must panic
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error from re-parked target")
	}
}

// TestResourceRingWrapAndGrow cycles more waiters than the initial ring
// capacity through a single-unit resource, twice, so the ring both grows and
// wraps around its backing array; FIFO order must survive.
func TestResourceRingWrapAndGrow(t *testing.T) {
	k := NewKernel()
	r := NewResource(1)
	var order []int
	const waves, per = 2, 21 // > initial ring size of 8, not a power of two
	for w := 0; w < waves; w++ {
		w := w
		for i := 0; i < per; i++ {
			i := i
			k.Go(fmt.Sprintf("w%d-%d", w, i), func(p *Proc) {
				p.SleepUntil(float64(w) + float64(i)*1e-6)
				r.Acquire(p)
				p.Sleep(1e-3)
				order = append(order, w*per+i)
				r.Release()
			})
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != waves*per {
		t.Fatalf("%d completions, want %d", len(order), waves*per)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("position %d: process %d completed (FIFO violated)", i, id)
		}
	}
	if r.MaxQueue() < per-2 {
		t.Fatalf("queue never got deep: max %d", r.MaxQueue())
	}
}
