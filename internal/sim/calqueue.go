package sim

import "math"

// calQueue is the kernel's event calendar: a windowed calendar queue (a
// Brown-1988 calendar with an overflow level), giving O(1) amortized
// push/pop against the O(log n) of a binary heap at the 10^4-10^5 pending
// events a 64K-rank simulation carries.
//
// Every event maps to a virtual bucket number vb(t) = floor(t / width); the
// physical bucket is vb modulo the (power-of-two) bucket count. Only events
// inside the active window [curVB, winHi) are bucketed; later events wait in
// an overflow (t, seq) min-heap and migrate into the buckets in batches when
// the window drains (reseed). The two levels exist because this workload's
// event spacing is violently bimodal — microsecond-spaced message traffic
// under checkpoint phases scheduled whole seconds out — so no single bucket
// width fits both: fitting the full span collapses the near-term population
// into one giant bucket heap, fitting the head strands the cursor walking
// millions of empty buckets. Fitting the width to the events inside the
// window sidesteps the dilemma.
//
// Correctness does not depend on the width at all — only on vb being a
// monotone function of t, which floating-point multiply-and-truncate
// guarantees. The queue maintains two invariants:
//
//   - every bucketed event has vb >= curVB: pop only removes an event whose
//     vb equals curVB, so an event in another bucket can never overtake it
//     (vb monotone in t means every other event has a strictly later time,
//     or lives in the same bucket where the per-bucket (t, seq) ordering
//     breaks the tie); push rewinds curVB when an event lands before it;
//   - every bucketed event precedes every overflow event, so pop may always
//     drain the buckets first. Push routes events at or past winHi to the
//     overflow heap, and resize caps the new window at the overflow minimum
//     when it retunes the width under a non-empty overflow.
//
// The result is that pop always returns the global (t, seq) minimum — the
// exact order a plain binary heap would produce — so simulated-time results
// are bit-identical by construction.
//
// Buckets store events by value and keep their capacity across pops, so the
// steady-state event churn performs no allocations; memory is only touched
// on resize and reseed.
type calQueue struct {
	buckets []bucket // per-bucket (t, seq) priority queues
	mask    uint64   // len(buckets) - 1; len is a power of two
	width   float64  // bucket time width
	inv     float64  // 1 / width
	ovfT    float64  // times >= ovfT (incl. +Inf) can never be bucketed
	curVB   uint64   // current virtual bucket (search cursor)
	winHi   uint64   // virtual buckets >= winHi go to the overflow heap
	n       int      // events stored in buckets
	ovf     []event  // (t, seq) min-heap of events beyond the window
	batch   []event  // reseed scratch
}

const (
	calMinBuckets = 16
	// calMinWidth floors the bucket width at a nanosecond — far below any
	// physically meaningful event spacing in this model. Without a floor, a
	// cluster of events separated by float-rounding ulps drives the width
	// estimate to ~1e-18 and the entire population out of the window.
	calMinWidth = 1e-9
)

// bucket is one calendar slot. The same bucket that holds three events in a
// sparse phase holds tens of thousands during a 64K-rank wave (a barrier
// releasing every rank at one instant, a gather serializing into one node),
// and those waves are scheduled in ascending (t, seq) order. The bucket
// exploits that: as long as pushes arrive in order it stays a sorted run
// popped O(1) from a head cursor, and only degrades to a binary heap — until
// it next drains — when an out-of-order push lands. The wave pattern
// therefore pays nothing for depth, instead of an O(log n) sift per event.
type bucket struct {
	evs  []event
	head int  // first live element when sorted
	heap bool // evs is a (t, seq) min-heap instead of a sorted run
}

func (b *bucket) empty() bool { return len(b.evs) == b.head }

// min returns the least event without removing it. Callers guarantee the
// bucket is non-empty. In heap mode head is always 0.
func (b *bucket) min() event { return b.evs[b.head] }

func (b *bucket) push(ev event) {
	if b.heap {
		b.evs = bheapPush(b.evs, ev)
		return
	}
	if n := len(b.evs); n == b.head || !eventLess(ev, b.evs[n-1]) {
		if b.head > 32 && 2*b.head >= n {
			// Mostly dead slots ahead of the cursor: compact so interleaved
			// push/pop traffic cannot grow the slice without bound. Copying
			// the live tail is amortized O(1) against the pops that created
			// the dead prefix.
			b.evs = b.evs[:copy(b.evs, b.evs[b.head:])]
			b.head = 0
		}
		b.evs = append(b.evs, ev) // still sorted
		return
	}
	// Out-of-order push: compact the live run to the front and heapify it.
	// The run is sorted — already a valid heap — so only the new element
	// needs sifting.
	b.evs = b.evs[:copy(b.evs, b.evs[b.head:])]
	b.head = 0
	b.heap = true
	b.evs = bheapPush(b.evs, ev)
}

func (b *bucket) pop() event {
	if b.heap {
		var ev event
		ev, b.evs = bheapPop(b.evs)
		if len(b.evs) == 0 {
			b.heap = false // drained: next fill starts as a sorted run
		}
		return ev
	}
	ev := b.evs[b.head]
	b.evs[b.head] = event{} // clear the slot so the closure can be collected
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
	}
	return ev
}

// drainInto appends the bucket's events to dst in arbitrary order, tracking
// the min/max time seen, and empties the bucket.
func (b *bucket) drainInto(dst []event, lo, hi float64) ([]event, float64, float64) {
	for _, ev := range b.evs[b.head:] {
		if ev.t < lo {
			lo = ev.t
		}
		if ev.t > hi {
			hi = ev.t
		}
		dst = append(dst, ev)
	}
	b.evs = b.evs[:0]
	b.head = 0
	b.heap = false
	return dst, lo, hi
}

func (c *calQueue) init() {
	c.buckets = make([]bucket, calMinBuckets)
	c.mask = calMinBuckets - 1
	c.setWidth(1e-6)
	c.winHi = calMinBuckets
}

// setWidth fixes the bucket width and the float-safety threshold. The
// threshold keeps t/width below 2^62 so the float-to-uint64 conversion in vb
// is always defined; anything later (including +Inf) always lives in the
// overflow heap regardless of the window.
func (c *calQueue) setWidth(w float64) {
	if !(w > calMinWidth) || math.IsInf(w, 0) {
		w = calMinWidth
	}
	c.width = w
	c.inv = 1 / w
	c.ovfT = w * (1 << 62)
}

// vb maps a time to its virtual bucket. Callers guarantee 0 <= t < ovfT.
func (c *calQueue) vb(t float64) uint64 { return uint64(t * c.inv) }

// len reports the total number of queued events.
func (c *calQueue) len() int { return c.n + len(c.ovf) }

// forEach visits every queued event in unspecified order, handing out
// pointers valid until the next push or pop. The sharded re-root uses it to
// re-stamp origin chains in place; callers must never mutate t or seq, so
// the calendar's internal (t, seq) order is unaffected.
func (c *calQueue) forEach(fn func(*event)) {
	for i := range c.buckets {
		b := &c.buckets[i]
		for j := b.head; j < len(b.evs); j++ {
			fn(&b.evs[j])
		}
	}
	for i := range c.ovf {
		fn(&c.ovf[i])
	}
}

// eventLess orders by (time, scheduling order). The top bits of seq carry
// the scheduling layer's trace tag (see layerShift in kernel.go) and are
// masked off here: layer tags must never influence dispatch order, or
// attaching a recorder would change simulated results.
func eventLess(a, b event) bool {
	return a.t < b.t || (a.t == b.t && a.seq&seqMask < b.seq&seqMask)
}

func (c *calQueue) push(ev event) {
	if ev.t >= c.ovfT {
		c.ovf = bheapPush(c.ovf, ev)
		return
	}
	if c.n >= 2*len(c.buckets) {
		c.resize()
		if ev.t >= c.ovfT {
			c.ovf = bheapPush(c.ovf, ev)
			return
		}
	}
	v := c.vb(ev.t)
	if v >= c.winHi {
		if c.n == 0 && len(c.ovf) == 0 {
			// Queue idle and time moved on: slide the window to the event.
			c.curVB = v
			c.winHi = v + uint64(len(c.buckets))
		} else {
			c.ovf = bheapPush(c.ovf, ev)
			return
		}
	}
	if v < c.curVB {
		c.curVB = v // re-establish the vb >= curVB invariant
	}
	c.buckets[v&c.mask].push(ev)
	c.n++
}

// peek returns the global (t, seq) minimum without removing it.
func (c *calQueue) peek() (event, bool) {
	if c.n > 0 {
		return c.buckets[c.locate()].min(), true
	}
	if len(c.ovf) > 0 {
		return c.ovf[0], true
	}
	return event{}, false
}

// pop removes and returns the global (t, seq) minimum. Bucketed events always
// precede overflow events, so the calendar is drained first; when it empties,
// the window reseeds from the overflow heap.
func (c *calQueue) pop() event {
	if c.n == 0 {
		if len(c.ovf) == 0 || c.ovf[0].t >= c.ovfT {
			var ev event
			ev, c.ovf = bheapPop(c.ovf)
			return ev
		}
		c.reseed()
	}
	b := c.locate()
	ev := c.buckets[b].pop()
	c.n--
	if c.n < len(c.buckets)/32 && len(c.buckets) > calMinBuckets {
		c.resize()
	}
	return ev
}

// locate advances curVB to the next virtual bucket holding a due event and
// returns its physical bucket index. Callers guarantee n > 0. A full lap over
// the bucket array without a hit means the queue is sparse relative to the
// cursor; then jump directly to the earliest event instead of walking time.
func (c *calQueue) locate() int {
	for steps := len(c.buckets); steps > 0; steps-- {
		b := c.curVB & c.mask
		if bk := &c.buckets[b]; !bk.empty() && c.vb(bk.min().t) == c.curVB {
			return int(b)
		}
		c.curVB++
	}
	return c.jump()
}

// reseed slides the window to the earliest overflow events and migrates a
// batch of them into the buckets, refitting the bucket width to the batch's
// own mean spacing. Because the heap drains in ascending (t, seq) order the
// batch is sorted, so the width estimate is exact for precisely the events
// it will govern — this is what keeps the calendar adaptive across phases
// whose event spacing differs by six orders of magnitude. Ascending order
// also means every migrated event lands as a sorted-run append. Callers
// guarantee the overflow top is below the float-safety threshold.
func (c *calQueue) reseed() {
	nb := len(c.buckets)
	limit := 2 * nb
	c.batch = c.batch[:0]
	for len(c.ovf) > 0 && c.ovf[0].t < c.ovfT && len(c.batch) < limit {
		var ev event
		ev, c.ovf = bheapPop(c.ovf)
		c.batch = append(c.batch, ev)
	}
	if m := len(c.batch); m > 1 {
		if span := c.batch[m-1].t - c.batch[0].t; span > 0 {
			c.setWidth(3 * span / float64(m-1))
		}
	}
	v := c.vb(c.batch[0].t)
	// If the batch boundary split a tighter-than-width cluster, drain the
	// rest of the cluster too: the window start bucket must never be capped
	// away, or no batch event could be placed and pop would loop.
	for len(c.ovf) > 0 && c.ovf[0].t < c.ovfT && c.vb(c.ovf[0].t) <= v {
		var ev event
		ev, c.ovf = bheapPop(c.ovf)
		c.batch = append(c.batch, ev)
	}
	c.curVB = v
	c.winHi = v + uint64(nb)
	if len(c.ovf) > 0 && c.ovf[0].t < c.ovfT {
		if lim := c.vb(c.ovf[0].t); lim < c.winHi {
			c.winHi = lim
		}
	}
	for _, ev := range c.batch {
		vv := c.vb(ev.t)
		if vv >= c.winHi {
			// Beyond the capped window: back to the overflow heap (the batch
			// is ascending, so these still precede everything left in it).
			c.ovf = bheapPush(c.ovf, ev)
			continue
		}
		c.buckets[vv&c.mask].push(ev)
		c.n++
	}
}

// jump finds the earliest event by scanning bucket heads and moves the cursor
// to it. Distinct buckets can never share a virtual bucket number, so the
// head with the minimum (t, seq) is the unique next event.
func (c *calQueue) jump() int {
	best := -1
	for i := range c.buckets {
		if bk := &c.buckets[i]; !bk.empty() &&
			(best < 0 || eventLess(bk.min(), c.buckets[best].min())) {
			best = i
		}
	}
	c.curVB = c.vb(c.buckets[best].min().t)
	return best
}

// resize rebuilds the calendar level for the current bucketed population:
// bucket count is the next power of two covering it, width targets a few
// events per bucket across that population's spacing. Overflow events stay
// in the overflow heap; the new window is capped at the overflow minimum so
// the buckets-before-overflow invariant survives the width change.
func (c *calQueue) resize() {
	all := make([]event, 0, c.n)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range c.buckets {
		all, lo, hi = c.buckets[i].drainInto(all, lo, hi)
	}

	nb := calMinBuckets
	for nb < len(all) {
		nb <<= 1
	}
	if nb != len(c.buckets) {
		c.buckets = make([]bucket, nb)
	}
	c.mask = uint64(nb) - 1
	// The bucketed population is window-bounded, so its span holds no
	// far-future outliers and the plain mean spacing is a sound width fit.
	if span := hi - lo; span > 0 && len(all) > 1 {
		c.setWidth(3 * span / float64(len(all)-1))
	}
	c.n = 0
	if len(all) == 0 {
		c.curVB = 0
		c.winHi = 0 // next push slides the window, next pop reseeds
		return
	}
	c.curVB = c.vb(lo)
	c.winHi = c.curVB + uint64(nb)
	if len(c.ovf) > 0 && c.ovf[0].t < c.ovfT {
		if cap := c.vb(c.ovf[0].t); cap < c.winHi {
			c.winHi = cap
		}
	}
	for _, ev := range all {
		// Events the capped window excludes join the overflow heap (they
		// still precede everything already there) and return at reseed.
		if v := c.vb(ev.t); v >= c.winHi {
			c.ovf = bheapPush(c.ovf, ev)
			continue
		}
		c.push(ev)
	}
}

// bheapPush and bheapPop implement a by-value (t, seq) binary min-heap on an
// event slice; used for heap-mode buckets and the overflow heap.
func bheapPush(h []event, ev event) []event {
	h = append(h, ev)
	i := len(h) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !eventLess(h[i], h[par]) {
			break
		}
		h[i], h[par] = h[par], h[i]
		i = par
	}
	return h
}

func bheapPop(h []event) (event, []event) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // clear the slot so the closure can be collected
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && eventLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top, h
}
