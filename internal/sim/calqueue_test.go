package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// popAll drains the queue, asserting monotone (t, seq) order.
func popAll(t *testing.T, c *calQueue) []event {
	t.Helper()
	var out []event
	for c.len() > 0 {
		ev := c.pop()
		if n := len(out); n > 0 && !eventLess(out[n-1], ev) {
			t.Fatalf("pop %d out of order: %v after %v", n, ev, out[n-1])
		}
		out = append(out, ev)
	}
	return out
}

// TestCalQueueRandomAgainstSort drives the calendar through enough random
// events to force growth resizes, window reseeds and cursor jumps, and checks
// the drain order against a plain sort. Time scales span nanoseconds to
// kiloseconds so the window logic sees the workload's bimodal spacing.
func TestCalQueueRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scales := []float64{1e-9, 1e-6, 1e-3, 1, 1e3}
	var c calQueue
	c.init()
	var all []event
	for seq := uint64(1); seq <= 20000; seq++ {
		ev := event{t: rng.Float64() * scales[rng.Intn(len(scales))], seq: seq}
		all = append(all, ev)
		c.push(ev)
	}
	got := popAll(t, &c)
	sort.Slice(all, func(i, j int) bool { return eventLess(all[i], all[j]) })
	for i := range all {
		if got[i] != all[i] {
			t.Fatalf("event %d: got %v want %v", i, got[i], all[i])
		}
	}
}

// TestCalQueueInterleavedChurn mixes pushes and pops (the simulation's actual
// access pattern) with times near the current head, exercising the sorted-run
// fast path, its heap-mode degradation, and bucket compaction.
func TestCalQueueInterleavedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var c calQueue
	c.init()
	now := 0.0
	seq := uint64(0)
	var last event
	var popped int
	for step := 0; step < 50000; step++ {
		if c.len() == 0 || rng.Intn(3) > 0 {
			seq++
			// Mostly near-future, occasionally far-future (overflow heap).
			d := rng.Float64() * 1e-6
			if rng.Intn(50) == 0 {
				d = rng.Float64() * 10
			}
			c.push(event{t: now + d, seq: seq})
			continue
		}
		ev := c.pop()
		if popped > 0 && !eventLess(last, ev) {
			t.Fatalf("step %d: pop %v after %v", step, ev, last)
		}
		if ev.t < now {
			t.Fatalf("step %d: time went backwards: %v < %v", step, ev.t, now)
		}
		now, last, popped = ev.t, ev, popped+1
	}
	popAll(t, &c)
}

// TestCalQueueSameTimestampFIFO checks that a deep same-timestamp cluster —
// a barrier releasing thousands of ranks at one instant — drains in exact
// scheduling order, including when pops interleave with new same-time pushes.
func TestCalQueueSameTimestampFIFO(t *testing.T) {
	var c calQueue
	c.init()
	const at = 3.5
	for seq := uint64(1); seq <= 5000; seq++ {
		c.push(event{t: at, seq: seq})
	}
	next := uint64(5001)
	for i := 0; i < 2000; i++ {
		ev := c.pop()
		if ev.seq != uint64(i+1) {
			t.Fatalf("pop %d: seq %d, want %d", i, ev.seq, i+1)
		}
		if i%2 == 0 {
			c.push(event{t: at, seq: next})
			next++
		}
	}
	want := uint64(2001)
	for c.len() > 0 {
		ev := c.pop()
		if ev.seq != want {
			t.Fatalf("drain: seq %d, want %d", ev.seq, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained to seq %d, want %d", want, next)
	}
}

// TestCalQueueShrinkAfterWave checks that the calendar shrinks back after a
// large wave drains (the shrink-resize path) and still orders a sparse tail
// correctly.
func TestCalQueueShrinkAfterWave(t *testing.T) {
	var c calQueue
	c.init()
	seq := uint64(0)
	for i := 0; i < 10000; i++ {
		seq++
		c.push(event{t: float64(i) * 1e-6, seq: seq})
	}
	for i := 0; i < 9990; i++ {
		c.pop()
	}
	if got := len(c.buckets); got > 1024 {
		t.Errorf("bucket array did not shrink: %d buckets for %d events", got, c.len())
	}
	seq++
	c.push(event{t: 100, seq: seq})
	out := popAll(t, &c)
	if out[len(out)-1].t != 100 {
		t.Fatalf("tail event lost: last pop %v", out[len(out)-1])
	}
}

// TestCalQueueInfinityAndHugeTimes checks the float-safety overflow route:
// events beyond the width-dependent horizon (including +Inf sentinels) stay
// in the overflow heap and still drain in order.
func TestCalQueueInfinityAndHugeTimes(t *testing.T) {
	var c calQueue
	c.init()
	inf := func(seq uint64) event { return event{t: 1e300, seq: seq} }
	c.push(inf(1))
	c.push(event{t: 1e-6, seq: 2})
	c.push(event{t: 5, seq: 3})
	got := popAll(t, &c)
	wantSeq := []uint64{2, 3, 1}
	for i, w := range wantSeq {
		if got[i].seq != w {
			t.Fatalf("pop %d: seq %d, want %d", i, got[i].seq, w)
		}
	}
}
