package sim

import (
	"testing"

	"repro/internal/trace"
)

// tickHook reschedules itself until remaining hits zero: a pure
// schedule/dispatch workload touching only the kernel hot path.
type tickHook struct {
	k         *Kernel
	dt        float64
	remaining int
}

func (h *tickHook) Fire() {
	if h.remaining--; h.remaining > 0 {
		h.k.AfterHook(h.dt, h)
	}
}

// TestDisabledTracingAllocFree pins the zero-cost contract: with no
// recorder installed, the kernel's schedule/dispatch cycle must not
// allocate. The tracing hooks on this path are a single `k.rec != nil`
// check (dispatch) and a shift-or into the seq word (insert); anything
// more shows up here as a failure.
func TestDisabledTracingAllocFree(t *testing.T) {
	k := NewKernel()
	h := &tickHook{k: k, dt: 1e-6}
	run := func() {
		h.remaining = 20000
		k.AtHook(k.Now()+h.dt, h)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the calendar queue: bucket slices keep their capacity
	if avg := testing.AllocsPerRun(10, run); avg != 0 {
		t.Fatalf("disabled-tracing dispatch allocates: %.1f allocs per 20k events", avg)
	}
}

// TestEnabledTracingAttributes is the control for the test above: the
// same workload with a recorder installed must attribute every clock
// advance, proving the nil check is the only thing separating the paths.
func TestEnabledTracingAttributes(t *testing.T) {
	k := NewKernel()
	rec := trace.NewRecorder()
	k.SetRecorder(rec)
	h := &tickHook{k: k, dt: 1e-6, remaining: 1000}
	k.AtHook(h.dt, h)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rec.AttributedTotal(); got == 0 {
		t.Fatal("recorder attributed no time with tracing enabled")
	}
	if k.Dispatched() != 1000 {
		t.Fatalf("dispatched %d events, want 1000", k.Dispatched())
	}
}

// BenchmarkDispatch measures the kernel's event cycle with tracing off
// and on; run with -benchmem to see the disabled path report 0 B/op.
func BenchmarkDispatch(b *testing.B) {
	for _, c := range []struct {
		name string
		rec  *trace.Recorder
	}{
		{"tracing-off", nil},
		{"tracing-on", trace.NewRecorder()},
	} {
		b.Run(c.name, func(b *testing.B) {
			k := NewKernel()
			k.SetRecorder(c.rec)
			h := &tickHook{k: k, dt: 1e-6}
			b.ReportAllocs()
			b.ResetTimer()
			h.remaining = b.N
			k.AtHook(k.Now()+h.dt, h)
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSleep measures the process path — Sleep's fast path advances
// the clock inline (with a recorder, one Advance call) without touching
// the calendar.
func BenchmarkSleep(b *testing.B) {
	for _, c := range []struct {
		name string
		rec  *trace.Recorder
	}{
		{"tracing-off", nil},
		{"tracing-on", trace.NewRecorder()},
	} {
		b.Run(c.name, func(b *testing.B) {
			k := NewKernel()
			k.SetRecorder(c.rec)
			b.ReportAllocs()
			b.ResetTimer()
			k.Go("sleeper", func(p *Proc) {
				for i := 0; i < b.N; i++ {
					p.Sleep(1e-6)
				}
			})
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
