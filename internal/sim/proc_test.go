package sim

import (
	"fmt"
	"testing"
)

func TestProcSleepAdvancesTime(t *testing.T) {
	k := NewKernel()
	var wake float64
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		wake = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 2.5 {
		t.Fatalf("woke at %v, want 2.5", wake)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			d := float64(5 - i)
			k.Go(name, func(p *Proc) {
				p.Sleep(d)
				order = append(order, name)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged: %v vs %v", a, b)
		}
	}
	// Shorter sleeps finish first.
	if a[0] != "p4" || a[4] != "p0" {
		t.Fatalf("wrong wake order: %v", a)
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	var sig Signal
	woken := 0
	for i := 0; i < 10; i++ {
		k.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			sig.Wait(p)
			woken++
			if p.Now() != 7 {
				t.Errorf("waiter woke at %v, want 7", p.Now())
			}
		})
	}
	k.At(7, func() { sig.Fire() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 10 {
		t.Fatalf("woken %d, want 10", woken)
	}
}

func TestSignalAlreadyFired(t *testing.T) {
	k := NewKernel()
	var sig Signal
	sig.Fire()
	ran := false
	k.Go("late", func(p *Proc) {
		sig.Wait(p) // must not block
		ran = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("waiter on fired signal never ran")
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Go("stuck", func(p *Proc) { sig.Wait(p) })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Procs) != 1 || de.Procs[0] != "stuck" {
		t.Fatalf("wrong deadlock report: %v", de.Procs)
	}
}

func TestResourceSerializesFIFO(t *testing.T) {
	k := NewKernel()
	res := NewResource(1)
	var order []int
	var ends []float64
	for i := 0; i < 4; i++ {
		i := i
		k.Go(fmt.Sprintf("c%d", i), func(p *Proc) {
			p.Sleep(float64(i) * 0.001) // stagger arrivals so FIFO order is i
			res.Acquire(p)
			p.Sleep(1)
			res.Release()
			order = append(order, i)
			ends = append(ends, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("non-FIFO service order: %v", order)
		}
	}
	// Unit-capacity resource with 1s service: completions ~1s apart.
	for i := 1; i < len(ends); i++ {
		gap := ends[i] - ends[i-1]
		if gap < 0.99 || gap > 1.01 {
			t.Fatalf("completion gap %v, want ~1s: %v", gap, ends)
		}
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	k := NewKernel()
	res := NewResource(3)
	var finish []float64
	for i := 0; i < 6; i++ {
		k.Go(fmt.Sprintf("c%d", i), func(p *Proc) {
			res.Acquire(p)
			p.Sleep(1)
			res.Release()
			finish = append(finish, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two waves of 3: finish times 1,1,1,2,2,2.
	want := []float64{1, 1, 1, 2, 2, 2}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finish, want)
		}
	}
	if res.InUse() != 0 {
		t.Fatalf("resource still in use: %d", res.InUse())
	}
	if res.MaxQueue() != 3 {
		t.Fatalf("max queue %d, want 3", res.MaxQueue())
	}
}

func TestReleaseIdleResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle resource did not panic")
		}
	}()
	NewResource(1).Release()
}

func TestYieldLetsSameTimeEventsRun(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestManyProcs(t *testing.T) {
	// Smoke test that process count in the tens of thousands works; this is
	// the scale the Blue Gene model runs at.
	k := NewKernel()
	const n = 20000
	done := 0
	for i := 0; i < n; i++ {
		k.Go(fmt.Sprintf("r%d", i), func(p *Proc) {
			p.Sleep(1)
			p.Sleep(1)
			done++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done %d, want %d", done, n)
	}
}

func TestSleepUntilPastIsNoop(t *testing.T) {
	k := NewKernel()
	k.Go("p", func(p *Proc) {
		p.Sleep(5)
		p.SleepUntil(3) // already past
		if p.Now() != 5 {
			t.Errorf("SleepUntil moved clock to %v", p.Now())
		}
		p.SleepUntil(8)
		if p.Now() != 8 {
			t.Errorf("SleepUntil(8) ended at %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
