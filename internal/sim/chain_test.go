package sim

import (
	"runtime"
	"sort"
	"testing"

	"repro/internal/xrand"
)

// TestChainLessMatchesReferenceOrder is the origin-chain property test: it
// replays a randomized reference serial execution — pop the (t, seq)
// minimum, open a segment, insert children, occasionally elide a resume
// under the fast path's own guard — while stamping every insert through a
// chainCtx exactly as the sharded kernel does. The property pinned: for
// every pair of events ever created, keyLess (time, then genealogy) agrees
// with the reference (time, insertion seq) order. That equivalence is what
// lets partitions with independent sequence counters reconstruct the
// serial kernel's global tie-break without global state.
func TestChainLessMatchesReferenceOrder(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 1234} {
		rng := xrand.New(seed)
		type item struct {
			ev  event // t, parent, idx as stamped; seq is the global counter
			seq uint64
		}
		var all []item  // every event ever created, in creation order
		var live []item // still-pending events, reference calendar
		var ctx chainCtx
		ctx.initRoot()
		seq := uint64(0)
		// Times live on a coarse grid so equal-timestamp ties — the entire
		// point of the genealogy — are common.
		grid := func() float64 { return float64(rng.Intn(4)) * 1e-6 }
		insert := func(tm float64) {
			seq++
			parent, idx := ctx.stamp()
			it := item{ev: event{t: tm, parent: parent, idx: idx}, seq: seq}
			all = append(all, it)
			live = append(live, it)
		}
		for i := 0; i < 6; i++ {
			insert(grid())
		}
		popMin := func() item {
			best := 0
			for i, it := range live {
				if it.ev.t < live[best].ev.t ||
					(it.ev.t == live[best].ev.t && it.seq < live[best].seq) {
					best = i
				}
			}
			it := live[best]
			live = append(live[:best], live[best+1:]...)
			return it
		}
		minT := func() (float64, bool) {
			if len(live) == 0 {
				return 0, false
			}
			m := live[0].ev.t
			for _, it := range live[1:] {
				if it.ev.t < m {
					m = it.ev.t
				}
			}
			return m, true
		}
		for step := 0; step < 400 && len(live) > 0; step++ {
			cur := popMin()
			ctx.begin(cur.ev.parent, cur.ev.t, cur.ev.idx)
			now := cur.ev.t
			for n := rng.Intn(3); n > 0; n-- {
				insert(now + grid())
			}
			if rng.Intn(3) == 0 {
				// The Sleep fast path: elide only when the wake time
				// strictly precedes every pending event (its guard).
				wake := now + 1e-6 + grid()
				if m, ok := minT(); ok && wake < m {
					seq++ // the reference resume consumes a seq slot
					ctx.elide(wake)
					now = wake
					for n := rng.Intn(3); n > 0; n-- {
						insert(now + grid())
					}
				}
			}
		}
		for i := range all {
			for j := range all {
				refLess := all[i].ev.t < all[j].ev.t ||
					(all[i].ev.t == all[j].ev.t && all[i].seq < all[j].seq)
				if got := keyLess(all[i].ev, all[j].ev); got != refLess {
					t.Fatalf("seed %d: keyLess(#%d, #%d)=%v, reference (t,seq) order says %v\n"+
						"a={t:%v seq:%d idx:%d} b={t:%v seq:%d idx:%d}",
						seed, i, j, got, refLess,
						all[i].ev.t, all[i].seq, all[i].ev.idx,
						all[j].ev.t, all[j].seq, all[j].ev.idx)
				}
			}
		}
	}
}

// TestChainBoundSentinel pins the bound convention: the zero stamp
// (parent nil, idx 0) precedes every real event at its own time, so the
// lanes' strictly-below-bound condition excludes bound-time events whether
// they are root-stamped or chained.
func TestChainBoundSentinel(t *testing.T) {
	bound := event{t: 1.0}
	var ctx chainCtx
	ctx.initRoot()
	p0, i0 := ctx.stamp()
	root := event{t: 1.0, parent: p0, idx: i0}
	if keyLess(root, bound) {
		t.Error("root event at bound time must not pass the bound")
	}
	if !keyLess(bound, root) {
		t.Error("bound must precede a root event at its own time")
	}
	ctx.begin(nil, 0.5, 1)
	pc, ic := ctx.stamp()
	chained := event{t: 1.0, parent: pc, idx: ic}
	if keyLess(chained, bound) {
		t.Error("chained event at bound time must not pass the bound")
	}
	earlier := event{t: 0.5, parent: p0, idx: i0 + 1}
	if !keyLess(earlier, bound) {
		t.Error("event before the bound time must pass the bound")
	}
}

// TestShardedRerootEquivalence forces origin-chain re-roots every few
// dispatch generations and checks the observable history of the
// partitioned model is byte-identical to a run that never re-roots:
// compaction must be invisible.
func TestShardedRerootEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	base, baseEvents, baseNow := shardScript(t, 5, 4)
	prev := chainRerootGoal
	defer func() { chainRerootGoal = prev }()
	for _, goal := range []uint64{0, 8, 64} {
		chainRerootGoal = goal
		got, gotEvents, gotNow := shardScript(t, 5, 4)
		if got != base {
			t.Fatalf("goal=%d history diverged from no-reroot run", goal)
		}
		if gotEvents != baseEvents || gotNow != baseNow {
			t.Fatalf("goal=%d stats diverged: events %d vs %d, now %v vs %v",
				goal, gotEvents, baseEvents, gotNow, baseNow)
		}
	}
}

// TestChainLessIsStrictWeakOrder sanity-checks comparator algebra on a
// brood of related stamps: irreflexivity, asymmetry, and agreement with
// sort (no panics, stable result).
func TestChainLessIsStrictWeakOrder(t *testing.T) {
	var ctx chainCtx
	ctx.initRoot()
	var evs []event
	for i := 0; i < 4; i++ {
		p, ix := ctx.stamp()
		evs = append(evs, event{t: 1.0, parent: p, idx: ix})
	}
	// Two nested generations at the same timestamp.
	for g := 0; g < 3; g++ {
		src := evs[len(evs)-1]
		ctx.begin(src.parent, src.t, src.idx)
		for i := 0; i < 3; i++ {
			p, ix := ctx.stamp()
			evs = append(evs, event{t: 1.0, parent: p, idx: ix})
		}
	}
	for i := range evs {
		if keyLess(evs[i], evs[i]) {
			t.Fatalf("keyLess not irreflexive at %d", i)
		}
		for j := range evs {
			if i != j && keyLess(evs[i], evs[j]) && keyLess(evs[j], evs[i]) {
				t.Fatalf("keyLess not asymmetric at (%d,%d)", i, j)
			}
		}
	}
	sorted := append([]event(nil), evs...)
	sort.Slice(sorted, func(i, j int) bool { return keyLess(sorted[i], sorted[j]) })
	for i := 1; i < len(sorted); i++ {
		if keyLess(sorted[i], sorted[i-1]) {
			t.Fatalf("sort order violated at %d", i)
		}
	}
}
