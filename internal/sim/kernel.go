// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel owns a calendar of timestamped events and a virtual clock.
// Model code runs either as plain event callbacks or as processes: ordinary
// goroutines that advance virtual time with Sleep and block on Signals and
// Resources. Exactly one goroutine — the Run caller or a single process —
// runs at any instant; the dispatch loop itself travels with that ownership
// (see the baton protocol below), so waking a process is a single direct
// goroutine handoff. This strict discipline makes every simulation
// bit-reproducible regardless of GOMAXPROCS, at the cost of running the model
// serially (which is what a discrete-event simulation does anyway).
//
// Events at equal timestamps fire in scheduling order (a monotonically
// increasing sequence number breaks ties), so the model never depends on
// calendar implementation details.
//
// The hot path is allocation-free at steady state: the calendar queue stores
// events by value in recycled buckets, and the AtProc/AfterProc fast paths
// schedule a process resume without the closure a plain At would capture.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Layer tagging: every scheduled event carries the trace.Layer that was
// current when it was scheduled, packed into the top bits of its sequence
// number. The calendar's ordering predicate masks those bits off, so the
// (t, seq-counter) dispatch order — and with it every simulated result —
// is bit-identical whether the bits are zero (tracing off, no layer ever
// set) or populated. Dispatch then restores the popped event's layer as
// the kernel's current layer, which gives causal layer inheritance across
// event chains: a commit completion scheduled by the storage layer
// advances the clock as storage time even though the kernel pops it.
const (
	layerShift = 56
	seqMask    = 1<<layerShift - 1
)

// Kernel is a discrete-event simulation engine. The zero value is not usable;
// call NewKernel.
type Kernel struct {
	now     float64
	seq     uint64
	cal     calQueue
	horizon float64 // Sleep may not advance the clock past this (RunUntil bound)
	procs   int     // live (spawned, not finished) processes
	nparked int     // processes currently parked
	reg     []*Proc // every process ever spawned, for deadlock reporting
	running bool
	mainCh  chan struct{} // baton handoff back to the Run/RunUntil caller

	rec    *trace.Recorder // nil = tracing disabled (the only cost: nil checks)
	layer  trace.Layer     // layer attributed to events scheduled now
	ndisp  uint64          // events dispatched (maintained only while tracing)
	nwoken uint64          // process resumes dispatched

	sh     *shard   // nil = serial mode (see partition.go)
	advLog []advRec // exclusive-lane clock advances, for the sharded merge
	ctx    chainCtx // exclusive-lane origin-chain context (sharded mode only)
}

// Hook is a pre-allocated event action. Hot schedulers (the MPI transport's
// message deliveries) implement it on a pooled object so firing an event
// allocates nothing; plain At callbacks are wrapped in one via funcHook,
// which is a free conversion because a func value is pointer-shaped.
type Hook interface{ Fire() }

type funcHook func()

func (f funcHook) Fire() { f() }

// event is one calendar entry, kept small so the calendar's heap operations
// move as little memory as possible. h is either an action to fire or —
// detected by type assertion in the dispatch loops — a *Proc to resume (the
// pooled fast path: converting a *Proc to Hook allocates nothing).
//
// parent and idx are the sharded-mode origin-chain stamp (see chain.go):
// the dispatch during which the event was inserted and its insert rank
// there. Serial mode leaves them zero — the serial kernel never compares
// events across calendars, and the calendar queues order by (t, seq) only.
type event struct {
	t      float64
	seq    uint64
	h      Hook
	parent *chainNode
	idx    uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	k := &Kernel{
		horizon: math.Inf(1),
		mainCh:  make(chan struct{}),
	}
	k.cal.init()
	return k
}

// Now returns the current simulation time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// SetRecorder attaches a trace recorder; nil detaches it. Attach before
// building the model so construction-time instrumentation (fabric pipes)
// sees it. The recorder only observes — it never schedules events or draws
// randomness — so attaching one cannot change simulated results.
func (k *Kernel) SetRecorder(r *trace.Recorder) { k.rec = r }

// Recorder returns the attached trace recorder, nil when tracing is off.
// Instrumented layers cache it and guard emission with a nil check.
func (k *Kernel) Recorder() *trace.Recorder { return k.rec }

// SetLayer declares which layer's code is scheduling events until further
// notice, returning the previous layer so callers can restore it on exit.
// Layer entry points (an MPI operation, a storage write, a checkpoint
// phase) bracket themselves with it; everything in between — including
// events their callees schedule — is attributed to that layer.
func (k *Kernel) SetLayer(l trace.Layer) trace.Layer {
	if k.sh != nil && k.sh.curPart != nil {
		// Sharded lane running in the coordinator goroutine (tracing caps
		// window workers at one): layer state is per-partition.
		pt := k.sh.curPart
		prev := pt.layer
		pt.layer = l
		return prev
	}
	prev := k.layer
	k.layer = l
	return prev
}

// Layer returns the layer currently attributed to new events.
func (k *Kernel) Layer() trace.Layer { return k.layer }

// At schedules fn to run at absolute simulation time t. Scheduling in the
// past panics: the model has a causality bug. In sharded mode un-targeted
// events go to the shared (exclusive) calendar; use AtHookPart/Post from
// lane context.
func (k *Kernel) At(t float64, fn func()) { k.insertAny(t, funcHook(fn)) }

// After schedules fn to run d seconds from now.
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.insertAny(k.now+d, funcHook(fn))
}

// AtHook schedules h to fire at absolute simulation time t without
// allocating: the caller owns (and may pool) the Hook.
func (k *Kernel) AtHook(t float64, h Hook) { k.insertAny(t, h) }

// AfterHook schedules h to fire d seconds from now.
func (k *Kernel) AfterHook(d float64, h Hook) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.insertAny(k.now+d, h)
}

// AtProc schedules process p to resume at absolute simulation time t. It is
// the allocation-free equivalent of At(t, func() { resume p }) for the
// kernel's hottest path: Sleep, Unpark and Go all schedule process resumes.
func (k *Kernel) AtProc(t float64, p *Proc) {
	if k.sh == nil {
		k.insert(t, p)
		return
	}
	k.insertProcSharded(t, p)
}

// AfterProc schedules process p to resume d seconds from now — in sharded
// mode, relative to the clock governing p's resume context: the target's
// lane clock when that lane is running (the waker shares it), the
// exclusive clock otherwise.
func (k *Kernel) AfterProc(d float64, p *Proc) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if k.sh == nil {
		k.insert(k.now+d, p)
		return
	}
	base := k.now
	if p.part != nil && p.part.active {
		base = p.part.now
	}
	k.insertProcSharded(base+d, p)
}

// insertAny routes a plain (non-process) insert: the single calendar in
// serial mode, the shared calendar in sharded mode.
func (k *Kernel) insertAny(t float64, h Hook) {
	if k.sh == nil {
		k.insert(t, h)
		return
	}
	k.insertShared(t, h)
}

func (k *Kernel) insert(t float64, h Hook) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	k.seq++
	k.cal.push(event{t: t, seq: k.seq | uint64(k.layer)<<layerShift, h: h})
}

// observe is the tracing-enabled half of a dispatch: attribute the clock
// advance to the popped event's layer, adopt that layer as current, and
// sample the calendar depth. Split out so the disabled hot path pays one
// nil check and nothing else.
func (k *Kernel) observe(ev event) {
	lay := trace.Layer(ev.seq >> layerShift)
	if ev.t > k.now {
		k.rec.Advance(lay, k.now, ev.t)
	}
	k.layer = lay
	k.ndisp++
	if k.ndisp&4095 == 0 {
		k.rec.Counter(trace.LayerKernel, "cal.depth", 0, ev.t, float64(k.cal.len()))
	}
}

// DeadlockError reports processes still blocked when the event calendar
// drained. In sharded mode it aggregates parked processes across every
// partition and the exclusive lane, and Parts records each process's
// partition (parallel to Procs; -1 = the shared/exclusive lane). Parts is
// nil for serial runs.
type DeadlockError struct {
	Procs []string // names of parked processes
	Parts []int    // owning partition per process, nil in serial mode
}

func (e *DeadlockError) Error() string {
	if e.Parts != nil {
		return fmt.Sprintf("sim: deadlock: %d processes still parked (first: %s %s)",
			len(e.Procs), e.Procs[0], partLabel(e.Parts[0]))
	}
	return fmt.Sprintf("sim: deadlock: %d processes still parked (first: %s)",
		len(e.Procs), e.Procs[0])
}

func partLabel(part int) string {
	if part < 0 {
		return "[shared]"
	}
	return fmt.Sprintf("[part %d]", part)
}

// Run executes events until the calendar is empty. It returns a
// *DeadlockError if any process is still parked afterwards — that means the
// model blocked a process on a condition nothing will ever fire.
func (k *Kernel) Run() error {
	if k.running {
		panic("sim: Run called reentrantly")
	}
	k.running = true
	k.horizon = math.Inf(1)
	defer func() { k.running = false }()
	if k.sh != nil {
		k.runSharded()
		k.finishSharded()
		return k.shardedDeadlock()
	}
	k.dispatchMain()
	if k.nparked > 0 {
		names := make([]string, 0, k.nparked)
		for _, p := range k.reg {
			if p.parked {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		return &DeadlockError{Procs: names}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t float64) {
	prev := k.horizon
	k.horizon = t
	if k.sh != nil {
		k.runSharded()
		k.horizon = prev
		k.finishSharded()
		if t > k.now {
			if k.rec != nil && t > k.sh.advClock {
				k.rec.Advance(trace.LayerKernel, k.sh.advClock, t)
				k.sh.advClock = t
			}
			k.now = t
			for _, pt := range k.sh.parts {
				pt.now = t
			}
		}
		return
	}
	k.dispatchMain()
	k.horizon = prev
	if t > k.now {
		if k.rec != nil {
			k.rec.Advance(trace.LayerKernel, k.now, t)
		}
		k.now = t
	}
}

// The baton protocol: exactly one goroutine — the Run/RunUntil caller
// ("main") or one process — owns the kernel at any instant and is responsible
// for dispatching events. Ownership moves over unbuffered channels: a token on
// a process's channel means "your resume event was just popped; you own the
// kernel, continue your model code", and a token on mainCh means "no event
// remains within the horizon; Run/RunUntil is done". Waking a process
// therefore hands the dispatch loop to it directly — one channel pair and one
// goroutine switch per wakeup, with main out of the loop entirely — instead
// of detouring every wakeup through a central scheduler goroutine. Every
// channel operation is a happens-before edge over all kernel and model state,
// which is what keeps the strict one-runnable-goroutine guarantee intact (and
// lets `go test -race` verify it mechanically).

// dispatchMain dispatches from the Run/RunUntil caller. It returns once no
// event remains within the horizon — either directly, or (after the baton has
// been handed to a process) when the out-of-work token arrives on mainCh.
func (k *Kernel) dispatchMain() {
	for {
		next, ok := k.cal.peek()
		if !ok || next.t > k.horizon {
			return
		}
		ev := k.cal.pop()
		if k.rec != nil {
			k.observe(ev)
		}
		k.now = ev.t
		p, ok := ev.h.(*Proc)
		if !ok {
			ev.h.Fire()
			continue
		}
		if p.done {
			panic("sim: resuming finished process " + p.name)
		}
		k.nwoken++
		p.ch <- struct{}{}
		<-k.mainCh
		return
	}
}

// dispatch dispatches from a process that just yielded (scheduled its own
// resume, or parked). It returns when the process's model code should
// continue: its own resume event popped, or — after passing the baton on —
// the resume token arrived on its channel.
func (k *Kernel) dispatch(self *Proc) {
	for {
		next, ok := k.cal.peek()
		if !ok || next.t > k.horizon {
			k.mainCh <- struct{}{}
			<-self.ch
			return
		}
		ev := k.cal.pop()
		if k.rec != nil {
			k.observe(ev)
		}
		k.now = ev.t
		p, ok := ev.h.(*Proc)
		if !ok {
			ev.h.Fire()
			continue
		}
		if p == self {
			return
		}
		if p.done {
			panic("sim: resuming finished process " + p.name)
		}
		k.nwoken++
		p.ch <- struct{}{}
		<-self.ch
		return
	}
}

// dispatchEnd dispatches from a process whose function has returned. It
// passes the baton on and returns so the goroutine can exit; the process has
// no future resume to wait for.
func (k *Kernel) dispatchEnd() {
	for {
		next, ok := k.cal.peek()
		if !ok || next.t > k.horizon {
			k.mainCh <- struct{}{}
			return
		}
		ev := k.cal.pop()
		if k.rec != nil {
			k.observe(ev)
		}
		k.now = ev.t
		p, ok := ev.h.(*Proc)
		if !ok {
			ev.h.Fire()
			continue
		}
		if p.done {
			panic("sim: resuming finished process " + p.name)
		}
		k.nwoken++
		p.ch <- struct{}{}
		return
	}
}

// Pending reports the number of events still scheduled.
func (k *Kernel) Pending() int {
	if k.sh != nil {
		return k.shardedPending()
	}
	return k.cal.len()
}

// Events reports the total number of events ever scheduled — the natural
// denominator for events-per-second throughput measurements. In sharded
// mode this sums the shared calendar's counter with every partition's;
// the total is identical to the serial run's (the same inserts happen,
// only their routing differs).
func (k *Kernel) Events() uint64 {
	if k.sh != nil {
		return k.shardedEvents()
	}
	return k.seq
}

// Dispatched reports events popped and fired. Maintained only while a
// recorder is attached; zero otherwise.
func (k *Kernel) Dispatched() uint64 {
	if k.sh != nil {
		return k.shardedDispatched()
	}
	return k.ndisp
}

// Woken reports process resumes dispatched through the baton protocol.
// Sleep's handoff-eliding fast path does not count: no resume event fires.
func (k *Kernel) Woken() uint64 {
	if k.sh != nil {
		return k.shardedWoken()
	}
	return k.nwoken
}
