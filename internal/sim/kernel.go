// Package sim implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel owns a calendar of timestamped events and a virtual clock.
// Model code runs either as plain event callbacks or as processes: ordinary
// goroutines that advance virtual time with Sleep and block on Signals and
// Resources. Exactly one goroutine — the kernel or a single process — runs at
// any instant; control is handed off explicitly through per-process channels.
// This strict handoff makes every simulation bit-reproducible regardless of
// GOMAXPROCS, at the cost of running the model serially (which is what a
// discrete-event simulation does anyway).
//
// Events at equal timestamps fire in scheduling order (a monotonically
// increasing sequence number breaks ties), so the model never depends on heap
// implementation details.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Kernel is a discrete-event simulation engine. The zero value is not usable;
// call NewKernel.
type Kernel struct {
	now     float64
	seq     uint64
	heap    eventHeap
	procs   int // live (spawned, not finished) processes
	parked  map[*Proc]struct{}
	running bool
}

type event struct {
	t   float64
	seq uint64
	fn  func()
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{parked: make(map[*Proc]struct{})}
}

// Now returns the current simulation time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// At schedules fn to run at absolute simulation time t. Scheduling in the
// past panics: the model has a causality bug.
func (k *Kernel) At(t float64, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	k.seq++
	k.heap.push(event{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (k *Kernel) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// DeadlockError reports processes still blocked when the event calendar
// drained.
type DeadlockError struct {
	Procs []string // names of parked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock: %d processes still parked (first: %s)",
		len(e.Procs), e.Procs[0])
}

// Run executes events until the calendar is empty. It returns a
// *DeadlockError if any process is still parked afterwards — that means the
// model blocked a process on a condition nothing will ever fire.
func (k *Kernel) Run() error {
	if k.running {
		panic("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for len(k.heap) > 0 {
		ev := k.heap.pop()
		k.now = ev.t
		ev.fn()
	}
	if len(k.parked) > 0 {
		names := make([]string, 0, len(k.parked))
		for p := range k.parked {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return &DeadlockError{Procs: names}
	}
	return nil
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t float64) {
	for len(k.heap) > 0 && k.heap[0].t <= t {
		ev := k.heap.pop()
		k.now = ev.t
		ev.fn()
	}
	if t > k.now {
		k.now = t
	}
}

// Pending reports the number of events still scheduled.
func (k *Kernel) Pending() int { return len(k.heap) }

// eventHeap is a binary min-heap ordered by (t, seq). It is hand-rolled
// rather than using container/heap to avoid interface boxing on the
// simulator's hottest path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{} // release closure for GC
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
