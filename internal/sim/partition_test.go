package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// shardScript runs a small partitioned model — per-partition workers that
// sleep, exchange mailbox posts with a neighbor partition, and
// periodically enter a shared section that appends to a global log — and
// returns the observable history. The history must be identical for any
// worker count and GOMAXPROCS.
func shardScript(t *testing.T, nparts, workers int) (string, uint64, float64) {
	t.Helper()
	k := NewKernel()
	const lookahead = 1e-6
	k.EnableSharding(nparts, workers, lookahead, 42)
	var log []string
	record := func(p *Proc, what string) {
		p.EnterShared()
		log = append(log, fmt.Sprintf("%.9f %s %s", p.Now(), p.Name(), what))
		p.ExitShared()
	}
	for part := 0; part < nparts; part++ {
		part := part
		for w := 0; w < 3; w++ {
			w := w
			k.GoPart(part, fmt.Sprintf("p%d.w%d", part, w), func(p *Proc) {
				rng := k.PartRNG(part)
				for i := 0; i < 20; i++ {
					p.Sleep(rng.Exp(3e-7))
					if i%5 == w%5 {
						record(p, fmt.Sprintf("iter%d", i))
					}
					if w == 0 && i%7 == 0 {
						// Cross-partition mailbox: fires on the neighbor's
						// lane at least one lookahead in the future.
						dst := (part + 1) % nparts
						at := p.Now() + lookahead + 1e-7
						k.Post(part, dst, at, funcHook(func() {}))
					}
				}
			})
		}
	}
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return strings.Join(log, "\n"), k.Events(), k.Now()
}

func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	base, baseEvents, baseNow := shardScript(t, 5, 1)
	if base == "" {
		t.Fatal("script produced no history")
	}
	for _, workers := range []int{2, 4, 8} {
		got, gotEvents, gotNow := shardScript(t, 5, workers)
		if got != base {
			t.Fatalf("workers=%d history diverged from workers=1", workers)
		}
		if gotEvents != baseEvents || gotNow != baseNow {
			t.Fatalf("workers=%d stats diverged: events %d vs %d, now %v vs %v",
				workers, gotEvents, baseEvents, gotNow, baseNow)
		}
	}
	// And independent of GOMAXPROCS.
	runtime.GOMAXPROCS(1)
	got, _, _ := shardScript(t, 5, 4)
	if got != base {
		t.Fatal("GOMAXPROCS=1 history diverged")
	}
}

// TestShardedSharedSectionOrder pins the exclusive lane's global ordering:
// shared sections from different partitions must interleave in strict
// (t, partition, local seq) key order even when lanes run concurrently.
func TestShardedSharedSectionOrder(t *testing.T) {
	k := NewKernel()
	k.EnableSharding(4, 4, 1e-6, 7)
	var order []float64
	for part := 0; part < 4; part++ {
		part := part
		k.GoPart(part, fmt.Sprintf("p%d", part), func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(1e-7 * float64(part+1))
				p.EnterShared()
				order = append(order, p.Now())
				p.ExitShared()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(order) != 200 {
		t.Fatalf("expected 200 sections, got %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("shared sections out of time order at %d: %v after %v",
				i, order[i], order[i-1])
		}
	}
}

// TestShardedMailboxLookaheadViolation pins the CMB safety net: a
// cross-partition post closer than the lookahead must panic.
func TestShardedMailboxLookaheadViolation(t *testing.T) {
	k := NewKernel()
	k.EnableSharding(2, 2, 1e-6, 1)
	k.GoPart(0, "violator", func(p *Proc) {
		p.Sleep(1e-7)
		defer func() {
			if recover() == nil {
				t.Error("expected lookahead violation panic")
			}
			// The baton must still be released or Run hangs.
			p.EnterShared()
			p.ExitShared()
		}()
		k.Post(0, 1, p.Now()+1e-9, funcHook(func() {}))
	})
	k.GoPart(1, "peer", func(p *Proc) { p.Sleep(5e-7) })
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestShardedDeadlockAggregation pins the satellite requirement: the
// deadlock report must aggregate parked processes across all partitions
// and name each one's partition.
func TestShardedDeadlockAggregation(t *testing.T) {
	k := NewKernel()
	k.EnableSharding(3, 2, 1e-6, 1)
	for part := 0; part < 3; part++ {
		part := part
		k.GoPart(part, fmt.Sprintf("stuck.%d", part), func(p *Proc) {
			p.Sleep(1e-7 * float64(part+1))
			p.Park()
		})
	}
	k.Go("stuck.shared", func(p *Proc) {
		p.Sleep(1e-9)
		p.Park()
	})
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(dl.Procs) != 4 || len(dl.Parts) != 4 {
		t.Fatalf("expected 4 parked across partitions, got procs=%v parts=%v", dl.Procs, dl.Parts)
	}
	want := map[string]int{"stuck.0": 0, "stuck.1": 1, "stuck.2": 2, "stuck.shared": -1}
	for i, name := range dl.Procs {
		if dl.Parts[i] != want[name] {
			t.Errorf("%s attributed to partition %d, want %d", name, dl.Parts[i], want[name])
		}
	}
	if !strings.Contains(dl.Error(), "[part 0]") {
		t.Errorf("error should name the partition: %q", dl.Error())
	}
}

// TestShardedRunUntil pins horizon semantics: events at the horizon run,
// later ones stay, and every clock lands on the horizon.
func TestShardedRunUntil(t *testing.T) {
	k := NewKernel()
	k.EnableSharding(2, 2, 1e-6, 1)
	var hits []float64
	for part := 0; part < 2; part++ {
		part := part
		k.GoPart(part, fmt.Sprintf("p%d", part), func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(1.0)
				p.EnterShared()
				hits = append(hits, p.Now())
				p.ExitShared()
			}
		})
	}
	k.RunUntil(3.0)
	if len(hits) != 6 {
		t.Fatalf("expected 6 section hits by t=3, got %d (%v)", len(hits), hits)
	}
	if k.Now() != 3.0 {
		t.Fatalf("clock should rest at the horizon, got %v", k.Now())
	}
	for part := 0; part < 2; part++ {
		if k.PartNow(part) != 3.0 {
			t.Fatalf("partition %d clock %v, want 3.0", part, k.PartNow(part))
		}
	}
	k.RunUntil(20.0)
	if len(hits) != 20 {
		t.Fatalf("expected all 20 section hits, got %d", len(hits))
	}
}

// TestSerialUnaffected pins that a serial kernel reports no sharding and
// partition-aware APIs degrade to their serial equivalents.
func TestSerialUnaffected(t *testing.T) {
	k := NewKernel()
	if k.Sharded() || k.NumPartitions() != 0 || k.Lookahead() != 0 {
		t.Fatal("serial kernel claims sharded state")
	}
	fired := 0
	k.AtHookPart(3, 1.0, funcHook(func() { fired++ }))
	k.AfterHookPart(9, 2.0, funcHook(func() { fired++ }))
	k.Post(1, 2, 3.0, funcHook(func() { fired++ }))
	done := false
	k.GoPart(5, "serial", func(p *Proc) {
		p.EnterShared()
		p.Sleep(4)
		p.ExitShared()
		if p.Part() != -1 {
			t.Error("serial proc should report part -1")
		}
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired != 3 || !done {
		t.Fatalf("serial degradations broken: fired=%d done=%v", fired, done)
	}
	if k.Now() != 4 {
		t.Fatalf("now=%v, want 4", k.Now())
	}
}
