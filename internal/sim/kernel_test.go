package sim

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(3, func() { got = append(got, 3) })
	k.At(1, func() { got = append(got, 1) })
	k.At(2, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("clock %v, want 3", k.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("events at equal time fired out of scheduling order: %v", got[:i+1])
		}
	}
}

func TestAfterAccumulates(t *testing.T) {
	k := NewKernel()
	var times []float64
	k.After(1, func() {
		times = append(times, k.Now())
		k.After(2, func() { times = append(times, k.Now()) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 1 || times[1] != 3 {
		t.Fatalf("got %v, want [1 3]", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(1, func() { fired++ })
	k.At(2, func() { fired++ })
	k.At(5, func() { fired++ })
	k.RunUntil(3)
	if fired != 2 {
		t.Fatalf("fired %d events by t=3, want 2", fired)
	}
	if k.Now() != 3 {
		t.Fatalf("clock %v, want 3", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending %d, want 1", k.Pending())
	}
}

func TestHeapPropertyRandomOrder(t *testing.T) {
	// Property: regardless of insertion order, events fire sorted by time.
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		k := NewKernel()
		var got []float64
		for _, s := range seeds {
			ts := float64(s)
			k.At(ts, func() { got = append(got, ts) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	k := NewKernel()
	last := -1.0
	var schedule func(depth int)
	schedule = func(depth int) {
		if k.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", k.Now(), last)
		}
		last = k.Now()
		if depth < 50 {
			k.After(0.5, func() { schedule(depth + 1) })
		}
	}
	k.After(0, func() { schedule(0) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNaNTimePanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN schedule did not panic")
		}
	}()
	k.At(math.NaN(), func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestDeadlockErrorMessage(t *testing.T) {
	err := &DeadlockError{Procs: []string{"a", "b"}}
	if !strings.Contains(err.Error(), "2 processes") || !strings.Contains(err.Error(), "a") {
		t.Fatalf("message %q", err.Error())
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel()
	k.At(1, func() {})
	k.At(2, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending %d", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Pending() != 0 {
		t.Fatalf("pending after run %d", k.Pending())
	}
}
