// Benchmarks regenerating every table and figure of the paper's evaluation
// (macro benchmarks, one simulated experiment per iteration — with the
// default -benchtime they run once and print the paper-comparable series),
// plus micro benchmarks for the substrate hot paths.
//
//	go test -bench=. -benchmem                    # everything (paper scale; ~20-40 min)
//	go test -bench=BenchmarkFig5to7 -benchmem     # one experiment
//	go test -bench=Micro -benchmem                # substrate micro benchmarks only
package repro_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bbuf"
	"repro/internal/bgp"
	"repro/internal/cemfmt"
	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/exp"
	"repro/internal/fsys"
	"repro/internal/gpfs"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/nekcem"
	"repro/internal/perf"
	"repro/internal/pvfs"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/xrand"
)

// printOnce keeps re-runs of a benchmark from spamming the tables.
var printOnce sync.Map

func report(b *testing.B, key, table string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(key, true); !done {
		fmt.Printf("\n== %s ==\n%s\n", key, table)
	}
}

func opts() exp.Options { return exp.Options{Seed: 1} }

// BenchmarkFig5to7Headline regenerates Figures 5 (write bandwidth), 6
// (checkpoint step time) and 7 (checkpoint/compute ratio): the five I/O
// approaches at 16K/32K/64K ranks, paper scale.
func BenchmarkFig5to7Headline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Headline(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 5: write bandwidth (GB/s)", exp.Fig5Table(rows))
		report(b, "Figure 6: overall time per checkpoint step (s)", exp.Fig6Table(rows))
		report(b, "Figure 7: checkpoint/computation time ratio", exp.Fig7Table(rows))
		// Headline metric: rbIO nf=ng bandwidth at 64K (paper: >13 GB/s).
		b.ReportMetric(rows[len(rows)-1].GBps, "rbIO-64K-GB/s")
	}
}

// BenchmarkFig8FileCountSweep regenerates Figure 8: rbIO (nf = ng)
// bandwidth against the number of files at each scale; the paper's optimum
// is nf = 1024.
func BenchmarkFig8FileCountSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig8(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 8: rbIO bandwidth vs number of files", exp.Fig8Table(rows))
		best := rows[0]
		for _, r := range rows {
			if r.NP == 65536 && r.GBps > best.GBps {
				best = r
			}
		}
		b.ReportMetric(float64(best.NF), "best-nf-at-64K")
	}
}

// BenchmarkFig9Distribution1PFPP regenerates Figure 9: the per-rank I/O
// time scatter of 1PFPP at 16,384 ranks (metadata-queue variance).
func BenchmarkFig9Distribution1PFPP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := exp.Fig9(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 9: I/O time distribution, 1PFPP @16K", d.Table())
		b.ReportMetric(d.Max, "max-rank-s")
		b.ReportMetric(d.Spread, "max/median")
	}
}

// BenchmarkFig10DistributionCoIO regenerates Figure 10: coIO 64:1 at
// 65,536 ranks — synchronized around the median with heavy-tail outliers.
func BenchmarkFig10DistributionCoIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := exp.Fig10(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 10: I/O time distribution, coIO 64:1 @64K", d.Table())
		b.ReportMetric(d.Median, "median-s")
		b.ReportMetric(d.Max, "max-rank-s")
	}
}

// BenchmarkFig11DistributionRbIO regenerates Figure 11: rbIO at 65,536
// ranks — the two bands (workers near zero, writers flat).
func BenchmarkFig11DistributionRbIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := exp.Fig11(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 11: I/O time distribution, rbIO @64K", d.Table())
		workers := d.ByRole[ckpt.RoleWorker]
		writers := d.ByRole[ckpt.RoleWriter]
		if len(workers) > 0 && len(writers) > 0 {
			b.ReportMetric(workers[len(workers)/2]*1e6, "worker-median-us")
			b.ReportMetric(writers[len(writers)/2], "writer-median-s")
		}
	}
}

// BenchmarkFig12WriteActivity regenerates Figure 12: the Darshan-style
// write-activity timelines of rbIO versus coIO at 32K ranks.
func BenchmarkFig12WriteActivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig12(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 12: write activity, rbIO vs coIO @32K", exp.Fig12Table(rows))
	}
}

// BenchmarkTableIPerceivedBandwidth regenerates Table I: rbIO's perceived
// write performance (CPU cycles per worker send; TB/s aggregate).
func BenchmarkTableIPerceivedBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableI(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Table I: perceived write performance (rbIO)", exp.TableITable(rows))
		b.ReportMetric(rows[len(rows)-1].PerceivedTBps, "perceived-64K-TB/s")
	}
}

// BenchmarkEq1ProductionImprovement regenerates the paper's Equation (1)
// estimate (~25x production improvement of rbIO over 1PFPP at nc=20) plus
// the directly measured end-to-end improvement.
func BenchmarkEq1ProductionImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Eq1(opts(), 16384, 20)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Equation 1: production improvement @16K, nc=20", res.Table())
		b.ReportMetric(res.Formula, "Eq1-improvement-x")
	}
}

// BenchmarkEq7Speedup regenerates the Section V-C2 blocked-time analysis:
// measured total blocked processor-time ratio versus Equation (7).
func BenchmarkEq7Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Speedup(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Equations 2-7: rbIO/coIO blocked-time speedup @16K", res.Table())
		b.ReportMetric(res.Measured, "measured-x")
		b.ReportMetric(res.Analytic, "Eq7-x")
	}
}

// BenchmarkMeshRead regenerates the Section III-B presetup measurements:
// 7.5 s for E=136K on 32K ranks and 28 s for E=546K on 131K ranks.
func BenchmarkMeshRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.MeshRead(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Section III-B: global mesh read (presetup)", exp.MeshReadTable(rows))
		b.ReportMetric(rows[0].Seconds, "E136K-32K-s")
	}
}

// Ablation benchmarks: the design choices DESIGN.md calls out.

func BenchmarkAblationAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblateAlignment(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Ablation: file-domain alignment (coIO nf=1 @16K)", exp.AblationTable(rows))
	}
}

func BenchmarkAblationWriterBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblateWriterBuffer(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Ablation: rbIO writer field-buffering @16K", exp.AblationTable(rows))
	}
}

func BenchmarkAblationAggRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblateGroupRatio(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Ablation: rbIO np:ng ratio @16K", exp.AblationTable(rows))
	}
}

func BenchmarkAblationIONCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblateIONCache(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Ablation: ION write-behind cache (rbIO @16K)", exp.AblationTable(rows))
	}
}

func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblateNoise(opts(), 65536)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Ablation: shared-storage noise (coIO 64:1 @64K)", exp.AblationTable(rows))
	}
}

// BenchmarkExtensionFSComparison runs the GPFS-versus-PVFS comparison the
// paper discusses but could not publish (Section V-C1), at 16K ranks.
func BenchmarkExtensionFSComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.FSComparison(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Extension: GPFS vs PVFS @16K", exp.FSComparisonTable(rows))
	}
}

// BenchmarkExtensionPriorWorkBGL reproduces the prior-work numbers the
// paper cites (reference [3]): rbIO on a 32K Blue Gene/L reached 2.3 GB/s
// raw and 21 TB/s perceived bandwidth.
func BenchmarkExtensionPriorWorkBGL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.PriorWorkBGL(opts())
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Extension: prior work [3], rbIO on BG/L @32K", exp.PriorWorkTable(rows))
		b.ReportMetric(rows[0].GBps, "BGL-GB/s")
		b.ReportMetric(rows[0].PerceivedTBps, "BGL-perceived-TB/s")
	}
}

// BenchmarkExtensionRestart measures each strategy's restart (read-side)
// performance at 16K ranks.
func BenchmarkExtensionRestart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RestartStudy(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Extension: restart performance @16K", exp.RestartTable(rows))
	}
}

func BenchmarkAblationBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblateBlockSize(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Ablation: GPFS block size (rbIO @16K)", exp.AblationTable(rows))
	}
}

// BenchmarkExtensionMultiLevel measures the SCR-style multi-level
// checkpointing extension against plain rbIO at 16K ranks.
func BenchmarkExtensionMultiLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.MultiLevelStudy(opts(), 16384)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Extension: multi-level checkpointing @16K", exp.MultiLevelTable(rows))
	}
}

// ---------------------------------------------------------------------------
// Performance-regression benchmarks for the calendar-queue kernel and the
// process handoff path. When BENCH_JSON names a directory, each also records
// its result as BENCH_<name>.json there (see internal/perf).

// emitBench writes one benchmark result as machine-readable JSON when the
// BENCH_JSON environment variable names a directory.
func emitBench(b *testing.B, name string, bench perf.Benchmark) {
	b.Helper()
	emitBenchNotes(b, name, "", bench)
}

// emitBenchNotes is emitBench with a human-readable environment note
// recorded in the report.
func emitBenchNotes(b *testing.B, name, notes string, bench perf.Benchmark) {
	b.Helper()
	dir := os.Getenv("BENCH_JSON")
	if dir == "" {
		return
	}
	bench.Name = name
	r := perf.NewReport(notes)
	r.Add(bench)
	if err := r.WriteJSON(filepath.Join(dir, "BENCH_"+name+".json")); err != nil {
		b.Error(err)
	}
}

// churnHook is a pooled self-rescheduling event: the steady-state calendar
// workload with zero allocation pressure of its own.
type churnHook struct {
	k    *sim.Kernel
	left *int
	rng  uint64
}

func (h *churnHook) Fire() {
	if *h.left <= 0 {
		return
	}
	*h.left--
	// xorshift so the population spreads over many buckets instead of
	// marching in lockstep.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	h.k.AfterHook(1e-7+float64(h.rng%1024)*1e-8, h)
}

// BenchmarkKernelEventChurn measures raw calendar push/pop throughput with a
// standing population of a thousand pooled events. Steady state must be
// allocation-free: 0 allocs/op is part of the kernel's contract.
func BenchmarkKernelEventChurn(b *testing.B) {
	k := sim.NewKernel()
	left := b.N
	const standing = 1024
	for i := 0; i < standing; i++ {
		k.AfterHook(float64(i+1)*1e-7, &churnHook{k: k, left: &left, rng: uint64(i)*2654435761 + 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	eps := float64(k.Events()) / b.Elapsed().Seconds()
	b.ReportMetric(eps, "events/s")
	emitBench(b, "KernelEventChurn", perf.Benchmark{
		NsPerOp:      float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		EventsPerSec: eps,
	})
}

// BenchmarkProcHandoff measures the full baton handoff: a parked process
// resumed by a peer, costing one channel round-trip and one goroutine switch
// each way. (BenchmarkMicroProcSwitch measures the Sleep fast path, which
// elides the handoff entirely.)
func BenchmarkProcHandoff(b *testing.B) {
	k := sim.NewKernel()
	var sleeper *sim.Proc
	sleeper = k.Go("sleeper", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Park()
		}
	})
	k.Go("waker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			sleeper.Unpark()
			p.Sleep(1e-6)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	emitBench(b, "ProcHandoff", perf.Benchmark{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	})
}

// BenchmarkResourceQueue measures Acquire/Release cycling through a deep FIFO
// wait queue (64 contenders on one unit), the pattern a 1PFPP metadata server
// sees at scale.
func BenchmarkResourceQueue(b *testing.B) {
	k := sim.NewKernel()
	res := sim.NewResource(1)
	const contenders = 64
	per := b.N/contenders + 1
	for i := 0; i < contenders; i++ {
		k.Go(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			for j := 0; j < per; j++ {
				res.Acquire(p)
				p.Sleep(1e-8)
				res.Release()
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	emitBench(b, "ResourceQueue", perf.Benchmark{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	})
}

// BenchmarkFig5Wallclock measures the end-to-end cost of regenerating
// Figure 5's 64K-rank column — all five approaches — the number the
// calendar-queue kernel and handoff work are judged by. The experiment
// fan-out uses the default worker pool, so multi-core machines overlap the
// five arms.
func BenchmarkFig5Wallclock(b *testing.B) {
	o := opts()
	o.NPs = []int{65536}
	perf.TuneGC()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := exp.RunAll(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			events += r.Events
		}
	}
	b.StopTimer()
	eps := float64(events) / b.Elapsed().Seconds()
	b.ReportMetric(eps, "events/s")
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "s/sweep")
	emitBench(b, "Fig5Wallclock64K", perf.Benchmark{
		NsPerOp:      float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		EventsPerSec: eps,
	})
}

// BenchmarkFig5Partitioned measures the partitioned parallel kernel against
// the serial kernel. The 64K arms regenerate Figure 5's 64K-rank column
// (all five approaches) with the experiment worker pool pinned to one, so
// the in-simulation lane workers are the only parallelism — the speedup
// measured is the partitioned kernel's alone, and on a single-core machine
// it honestly reports the coordination overhead instead. The 1M arm times
// the paper's best approach (rbIO nf=ng) at np=1,048,576 on the partitioned
// kernel, the scale the partitioning exists for. With BENCH_JSON set, all
// arms land in BENCH_fig5_1m.json.
func BenchmarkFig5Partitioned(b *testing.B) {
	perf.TuneGC()
	arms := []struct {
		name       string
		np, shards int
		approaches []int
	}{
		{"serial64K", 65536, 1, nil},
		{"sharded64K", 65536, 8, nil},
		{"sharded1M", 1048576, 8, []int{4}},
	}
	type res struct {
		wall, eps float64
		events    uint64
	}
	results := map[string]res{}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			o := opts()
			o.NPs = []int{arm.np}
			o.Parallel = 1
			o.Shards = arm.shards
			var events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runs, err := exp.RunAll(o, arm.approaches...)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range runs {
					events += r.Events
				}
			}
			b.StopTimer()
			eps := float64(events) / b.Elapsed().Seconds()
			b.ReportMetric(eps, "events/s")
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N), "s/sweep")
			results[arm.name] = res{
				wall:   b.Elapsed().Seconds() / float64(b.N),
				eps:    eps,
				events: events / uint64(b.N),
			}
		})
	}
	s, okS := results["serial64K"]
	sh, okSh := results["sharded64K"]
	m, okM := results["sharded1M"]
	if okS && okSh && okM {
		emitBenchNotes(b, "fig5_1m",
			fmt.Sprintf("Partitioned (sharded) kernel vs serial, seed=1, experiment pool pinned to 1 worker, GOMAXPROCS=%d. "+
				"64K arms: full Figure 5 column (five approaches); 1M arm: rbIO nf=ng only, shards=8. "+
				"Sharded output is byte-identical to serial (goldens in internal/exp). "+
				"The >=2x parallel speedup target requires >=4 cores; a single-CPU machine cannot demonstrate it — there the measured ratio (sharded64K_speedup) is calendar-locality gains minus lane-coordination overhead, not parallelism.",
				runtime.GOMAXPROCS(0)),
			perf.Benchmark{
				NsPerOp:      m.wall * 1e9,
				EventsPerSec: m.eps,
				Extra: map[string]float64{
					"serial64K_wall_s":          s.wall,
					"serial64K_events_per_sec":  s.eps,
					"sharded64K_wall_s":         sh.wall,
					"sharded64K_events_per_sec": sh.eps,
					"sharded64K_speedup":        s.wall / sh.wall,
					"sharded1M_wall_s":          m.wall,
					"sharded1M_kernel_events":   float64(m.events),
					"gomaxprocs":                float64(runtime.GOMAXPROCS(0)),
				},
			})
	}
}

// BenchmarkRecovery measures the closed-loop checkpoint/restart lifecycle
// study at 2048 ranks: all four strategy families, one fault-free arm plus
// the full MTBF ladder each, every rollback really scanning manifests and
// re-reading its picked epoch. The recorded extras carry the experiment's
// headline physics — the worst measured-over-Daly ratio and the total
// rollback/torn counts — so a regression in the recovery path or the epoch
// protocol shows up in the JSON trend, not just the wall clock.
func BenchmarkRecovery(b *testing.B) {
	perf.TuneGC()
	var rows []exp.RecoveryRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.RecoveryStudy(opts(), 2048, 6, 120, 12)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, "Recovery: measured lifecycle vs the Daly model @2048", exp.RecoveryTable(rows))
	worstRatio, rollbacks, torn := 0.0, 0, 0
	for _, r := range rows {
		if r.Daly > 0 && r.Makespan/r.Daly > worstRatio {
			worstRatio = r.Makespan / r.Daly
		}
		rollbacks += r.Rollbacks
		torn += r.Torn
	}
	b.ReportMetric(worstRatio, "worst-measured/daly-x")
	emitBench(b, "Recovery", perf.Benchmark{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Extra: map[string]float64{
			"worst_measured_over_daly_x": worstRatio,
			"total_rollbacks":            float64(rollbacks),
			"total_torn_epochs":          float64(torn),
			"rows":                       float64(len(rows)),
		},
	})
}

// ---------------------------------------------------------------------------
// Micro benchmarks: substrate hot paths.

// BenchmarkMicroKernelEvents measures raw event throughput of the DES
// kernel.
func BenchmarkMicroKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	var fire func(depth int)
	n := 0
	fire = func(depth int) {
		n++
		if n < b.N {
			k.After(1e-6, func() { fire(depth + 1) })
		}
	}
	b.ResetTimer()
	k.After(0, func() { fire(0) })
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMicroProcSwitch measures the strict-handoff context switch.
func BenchmarkMicroProcSwitch(b *testing.B) {
	k := sim.NewKernel()
	k.Go("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1e-9)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMicroTorusRoute measures dimension-ordered route computation on
// the 64K-rank partition's torus.
func BenchmarkMicroTorusRoute(b *testing.B) {
	t := topo.Dims(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Route(i%t.Nodes(), (i*2654435761)%t.Nodes())
	}
}

// BenchmarkMicroTorusTransfer measures the contention-tracked transfer
// arithmetic.
func BenchmarkMicroTorusTransfer(b *testing.B) {
	m := bgp.MustNew(sim.NewKernel(), xrand.New(1), bgp.Intrepid(4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Net.Transfer(float64(i), i%1024, (i*31)%1024, 1<<20)
	}
}

// BenchmarkMicroP2P measures an MPI send/recv pair end to end through the
// simulator.
func BenchmarkMicroP2P(b *testing.B) {
	k := sim.NewKernel()
	m := bgp.MustNew(k, xrand.New(1), bgp.Intrepid(64))
	w := mpi.NewWorld(m, mpi.DefaultConfig())
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm, r *mpi.Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < b.N; i++ {
				c.Send(r, 1, 1, data.Synthetic(4096))
			}
		case 1:
			for i := 0; i < b.N; i++ {
				c.Recv(r, 0, 1)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMicroAllgather measures a 256-rank allgather through the
// binomial gather + broadcast path.
func BenchmarkMicroAllgather(b *testing.B) {
	k := sim.NewKernel()
	m := bgp.MustNew(k, xrand.New(1), bgp.Intrepid(256))
	w := mpi.NewWorld(m, mpi.DefaultConfig())
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm, r *mpi.Rank) {
		for i := 0; i < b.N; i++ {
			c.AllgatherInt64(r, int64(r.ID()))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMicroGPFSWrite measures the full storage path (funnel, tokens,
// stream, Ethernet, striped commit) for a 4 MiB write.
func BenchmarkMicroGPFSWrite(b *testing.B) {
	k := sim.NewKernel()
	m := bgp.MustNew(k, xrand.New(1), bgp.Intrepid(256))
	fs := gpfs.MustNew(m, gpfs.DefaultConfig())
	k.Go("w", func(p *sim.Proc) {
		h, err := fs.Create(p, 0, "bench")
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < b.N; i++ {
			if err := h.WriteAt(p, 0, int64(i)*4<<20, data.Synthetic(4<<20)); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4 << 20)
}

// BenchmarkStorageCommitPath measures the shared storage core's unified
// write path (funnel, metadata/lock/data policy hooks, striped commit) under
// each backend's policy composition: 4 MiB sequential writes on a 256-rank
// partition, the same op for all three arms so the ns/op difference is the
// policies'. The bbuf arm gets an unbounded buffer so it stays on the
// absorption path instead of flipping to spill when the background drain
// falls behind the writer. With BENCH_JSON set, all three arms are recorded
// in BENCH_StorageCommitPath.json.
func BenchmarkStorageCommitPath(b *testing.B) {
	arms := []struct {
		name  string
		mount func(m *bgp.Machine) fsys.System
	}{
		{"gpfs", func(m *bgp.Machine) fsys.System { return gpfs.MustNew(m, gpfs.DefaultConfig()) }},
		{"pvfs", func(m *bgp.Machine) fsys.System { return pvfs.MustNew(m, pvfs.DefaultConfig()) }},
		{"bbuf", func(m *bgp.Machine) fsys.System {
			cfg := bbuf.DefaultConfig()
			cfg.BufferPerION = 1 << 62
			return bbuf.MustNew(m, cfg)
		}},
	}
	results := map[string]float64{}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			k := sim.NewKernel()
			m := bgp.MustNew(k, xrand.New(1), bgp.Intrepid(256))
			fs := arm.mount(m)
			k.Go("w", func(p *sim.Proc) {
				h, err := fs.Create(p, 0, "bench")
				if err != nil {
					b.Error(err)
					return
				}
				for i := 0; i < b.N; i++ {
					if err := h.WriteAt(p, 0, int64(i)*4<<20, data.Synthetic(4<<20)); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			if err := k.Run(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.SetBytes(4 << 20)
			results[arm.name] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
	}
	if os.Getenv("BENCH_JSON") != "" {
		emitBench(b, "StorageCommitPath", perf.Benchmark{
			NsPerOp: results["gpfs"],
			Extra: map[string]float64{
				"pvfs_ns_per_op": results["pvfs"],
				"bbuf_ns_per_op": results["bbuf"],
			},
		})
	}
}

// BenchmarkMicroHeaderMarshal measures checkpoint header encode+decode for
// a 1024-chunk file.
func BenchmarkMicroHeaderMarshal(b *testing.B) {
	h := &cemfmt.Header{App: "NekCEM", Step: 7, Fields: nekcem.FieldNames}
	for i := 0; i < 1024; i++ {
		h.ChunkBytes = append(h.ChunkBytes, 1<<20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := h.Marshal()
		if _, err := cemfmt.Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSEDGAdvance measures the real spectral-element kernel: one
// RK step of 4 order-7 elements.
func BenchmarkMicroSEDGAdvance(b *testing.B) {
	st := nekcem.NewState(nekcem.Mesh{E: 4, N: 7}, 0, 1)
	st.InitWaveguide()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Advance(1e-4)
	}
}

// BenchmarkMicroCheckpointStep measures one full coordinated rbIO
// checkpoint at 1024 ranks (simulation throughput, not simulated time).
func BenchmarkMicroCheckpointStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		m := bgp.MustNew(k, xrand.New(1), bgp.Intrepid(1024))
		fs := gpfs.MustNew(m, gpfs.DefaultConfig())
		w := mpi.NewWorld(m, mpi.DefaultConfig())
		_, err := nekcem.Run(w, fs, nekcem.RunConfig{
			Mesh: nekcem.PaperMesh(1024), Strategy: ckpt.DefaultRbIO(), Dir: "ckpt",
			Steps: 1, CheckpointEvery: 1, Synthetic: true, SkipPresetup: true,
			PayloadFactor: nekcem.PaperPayloadFactor, Compute: nekcem.DefaultComputeModel(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroCollectiveWrite measures a 256-rank MPI-IO collective write
// through the two-phase machinery.
func BenchmarkMicroCollectiveWrite(b *testing.B) {
	k := sim.NewKernel()
	m := bgp.MustNew(k, xrand.New(1), bgp.Intrepid(256))
	fs := gpfs.MustNew(m, gpfs.DefaultConfig())
	w := mpi.NewWorld(m, mpi.DefaultConfig())
	b.ResetTimer()
	err := w.Run(func(c *mpi.Comm, r *mpi.Rank) {
		f, err := mpiio.Open(c, r, fs, "cw", true, mpiio.DefaultHints())
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < b.N; i++ {
			base := int64(i) * 256 * 65536
			if err := f.WriteAtAll(r, base+int64(c.Rank(r))*65536, data.Synthetic(65536)); err != nil {
				b.Error(err)
				return
			}
		}
		f.Close(r)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCkptStorm measures the multi-tenant interference experiment:
// two 1024-rank tenants sweeping alone/staggered/colliding arms across all
// three strategy families on one shared machine, noise off so the measured
// slowdown is pure endogenous contention. Besides the wall-clock cost, the
// report records the experiment's headline physics — the worst colliding
// penalty and its staggered recovery — so a regression in either the
// scheduler or the shared-storage path shows up in the JSON trend.
func BenchmarkCkptStorm(b *testing.B) {
	o := opts()
	o.Quiet = true
	perf.TuneGC()
	var r *exp.CkptStormResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.CkptStorm(o, 1024, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	worst := r.WorstColliding()
	b.ReportMetric(worst.CollidingPenalty, "worst-colliding-x")
	b.ReportMetric(worst.StaggeredPenalty, "worst-staggered-x")
	emitBench(b, "CkptStorm", perf.Benchmark{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Extra: map[string]float64{
			"worst_colliding_penalty_x": worst.CollidingPenalty,
			"worst_staggered_penalty_x": worst.StaggeredPenalty,
			"capacity_ranks":            float64(r.Capacity),
		},
	})
}

// BenchmarkAsyncFrontier records the asynchronous checkpoint frontier at
// 2048 ranks: the blocked-time collapse against the best sync arm, the
// background flush tail, and the staleness price under injected kills
// (BENCH_Async.json via `make async`).
func BenchmarkAsyncFrontier(b *testing.B) {
	perf.TuneGC()
	var rows []exp.AsyncFrontierRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.AsyncFrontier(opts(), 2048, 6, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, "AsyncFrontier: blocked time vs makespan vs staleness @2048", exp.AsyncFrontierTable(rows))
	var asyncBlocked, bestSync, flushTail, asyncStale, syncStale float64
	bestSync = 1e18
	for _, r := range rows {
		if r.Strategy == "async" {
			asyncBlocked = r.BlockedSec
			flushTail = r.FlushSec
			asyncStale = r.AvgStaleSec
		} else {
			if r.BlockedSec < bestSync {
				bestSync = r.BlockedSec
			}
			if r.AvgStaleSec > syncStale {
				syncStale = r.AvgStaleSec
			}
		}
	}
	blockedWin := 0.0
	if asyncBlocked > 0 {
		blockedWin = bestSync / asyncBlocked
	}
	b.ReportMetric(blockedWin, "blocked-win-x")
	b.ReportMetric(flushTail, "flush-tail-s")
	emitBench(b, "Async", perf.Benchmark{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Extra: map[string]float64{
			"async_blocked_s":     asyncBlocked,
			"best_sync_blocked_s": bestSync,
			"blocked_win_x":       blockedWin,
			"flush_tail_s":        flushTail,
			"async_avg_stale_s":   asyncStale,
			"sync_avg_stale_s":    syncStale,
		},
	})
}

// BenchmarkBBFleet records the burst-buffer fleet sizing study at 2048
// ranks: the full-fleet writer win over the synchronous reference, the
// undersized-FIFO degradation the deadline policy buys back, and the
// drain-tail price it charges.
func BenchmarkBBFleet(b *testing.B) {
	perf.TuneGC()
	var res *exp.BBSizeResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.BBSize(opts(), 2048, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	report(b, "BB fleet sizing: size x drain policy x pset ratio @2048", res.Table())
	report(b, "BB fleet sizing: faulted arm", res.FaultTable())
	// Pull the headline cells from the default-ratio rbIO rows: the sync
	// reference, the full private-shape fleet, and the worst undersized
	// fleet under each policy.
	var syncWriter, fullWriter, worstFIFO, worstDeadline, deadlineTail float64
	for _, r := range res.Rows {
		if r.Strategy != "rbio" || r.Ratio != res.Rows[len(res.Rows)-1].Ratio {
			continue
		}
		switch {
		case r.Fleet == 0:
			syncWriter = r.WriterSec
		case r.Fleet == r.Psets:
			fullWriter = r.WriterSec
		case r.Drain == "fifo" && r.WriterSec > worstFIFO:
			worstFIFO = r.WriterSec
		case r.Drain == "deadline":
			if r.WriterSec > worstDeadline {
				worstDeadline = r.WriterSec
			}
			if r.DrainTailSec > deadlineTail {
				deadlineTail = r.DrainTailSec
			}
		}
	}
	writerWin := 0.0
	if fullWriter > 0 {
		writerWin = syncWriter / fullWriter
	}
	b.ReportMetric(writerWin, "writer-win-x")
	b.ReportMetric(worstFIFO, "worst-fifo-writer-s")
	emitBench(b, "BBFleet", perf.Benchmark{
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Extra: map[string]float64{
			"sync_writer_s":           syncWriter,
			"full_fleet_writer_s":     fullWriter,
			"writer_win_x":            writerWin,
			"worst_fifo_writer_s":     worstFIFO,
			"worst_deadline_writer_s": worstDeadline,
			"deadline_tail_s":         deadlineTail,
		},
	})
}
