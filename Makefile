# Developer entry points. The repo is pure Go with no dependencies beyond the
# toolchain; everything below is a thin wrapper over the go tool.

GO ?= go

.PHONY: build test check bench bench-json fig5 storm recovery async bb

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static analysis, a full build, and the kernel +
# experiment-runner tests under the race detector (the parallel fan-out and
# the baton protocol are exactly the code -race can falsify).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/sim/... ./internal/exp/... ./internal/machine/...

# bench runs the perf-regression microbenchmarks (calendar queue, process
# handoff, resource ring). BenchmarkFig5Wallclock is excluded: it simulates
# the full 64K sweep and takes minutes — run `make fig5` for it.
bench:
	$(GO) test -run xxx -bench 'KernelEventChurn|ProcHandoff|ResourceQueue' -benchmem .

# bench-json additionally records BENCH_<name>.json files in the repo root.
bench-json:
	BENCH_JSON=. $(GO) test -run xxx -bench 'KernelEventChurn|ProcHandoff|ResourceQueue' -benchmem .

fig5:
	BENCH_JSON=. $(GO) test -run xxx -bench Fig5Wallclock -benchtime 1x .

# storm records the multi-tenant interference benchmark (BENCH_CkptStorm.json):
# wall-clock plus the worst colliding/staggered penalties of the storm sweep.
storm:
	BENCH_JSON=. $(GO) test -run xxx -bench CkptStorm -benchtime 1x .

# async records the asynchronous checkpoint frontier benchmark
# (BENCH_Async.json): blocked-time win over the best sync arm, flush tail,
# and staleness price at 2048 ranks.
async:
	BENCH_JSON=. $(GO) test -run xxx -bench AsyncFrontier -benchtime 1x .

# bb records the burst-buffer fleet sizing benchmark (BENCH_BBFleet.json):
# full-fleet writer win over the sync reference, worst undersized-FIFO
# degradation, and the deadline policy's drain-tail price at 2048 ranks.
bb:
	BENCH_JSON=. $(GO) test -run xxx -bench BBFleet -benchtime 1x .

# recovery records the closed-loop checkpoint/restart lifecycle benchmark
# (BENCH_Recovery.json): the measured-vs-Daly study at 2048 ranks, all four
# strategy families across the MTBF ladder.
recovery:
	BENCH_JSON=. $(GO) test -run xxx -bench 'Recovery$$' -benchtime 1x .
