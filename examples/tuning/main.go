// Tuning: the parameter-space exploration the paper recommends (Section
// V-B/VII) — sweep rbIO's writer ratio (np:ng) and coIO's file count (nf)
// on one partition and print the tuning surface, the way an application
// team would pick settings for a new machine.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/bgp"
	"repro/internal/ckpt"
	"repro/internal/exp"
	"repro/internal/gpfs"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/nekcem"
	"repro/internal/sim"
	"repro/internal/xrand"
)

const np = 4096

// measure runs one checkpoint step of the strategy on a fresh partition and
// returns (bandwidth GB/s, step seconds).
func measure(strategy ckpt.Strategy) (float64, float64) {
	kernel := sim.NewKernel()
	machine := bgp.MustNew(kernel, xrand.New(11), bgp.Intrepid(np))
	fs := gpfs.MustNew(machine, gpfs.DefaultConfig())
	world := mpi.NewWorld(machine, mpi.DefaultConfig())
	res, err := nekcem.Run(world, fs, nekcem.RunConfig{
		Mesh:            nekcem.PaperMesh(np),
		Strategy:        strategy,
		Dir:             "ckpt",
		Steps:           1,
		CheckpointEvery: 1,
		Synthetic:       true,
		SkipPresetup:    true,
		PayloadFactor:   nekcem.PaperPayloadFactor,
		Compute:         nekcem.DefaultComputeModel(),
	})
	if err != nil {
		log.Fatal(err)
	}
	c := res.Checkpoints[0]
	return c.Bandwidth() / 1e9, c.StepTime()
}

func main() {
	fmt.Printf("tuning checkpoint I/O on a %d-rank partition (%.1f GB per step)\n\n",
		np, float64(nekcem.PaperMesh(np).CheckpointBytesFactor(nekcem.PaperPayloadFactor))/1e9)

	// Sweep 1: rbIO writer ratio. More writers = more parallel streams but
	// more files and less aggregation per writer.
	rows := [][]string{}
	bestBW, bestLabel := 0.0, ""
	for _, gs := range []int{16, 32, 64, 128, 256} {
		s := ckpt.DefaultRbIO()
		s.GroupSize = gs
		bw, step := measure(s)
		rows = append(rows, []string{
			fmt.Sprintf("%d:1", gs), fmt.Sprint(np / gs),
			fmt.Sprintf("%.2f", bw), fmt.Sprintf("%.2f", step),
		})
		if bw > bestBW {
			bestBW, bestLabel = bw, fmt.Sprintf("rbIO np:ng=%d:1", gs)
		}
	}
	fmt.Println("rbIO writer-ratio sweep (nf = ng):")
	fmt.Println(exp.FormatTable([]string{"np:ng", "writers", "GB/s", "step (s)"}, rows))

	// Sweep 2: coIO file count, nf = 1 .. np/64.
	rows = rows[:0]
	for _, nf := range []int{1, 4, 16, 64} {
		bw, step := measure(ckpt.CoIO{NumFiles: nf, Hints: mpiio.DefaultHints()})
		rows = append(rows, []string{
			fmt.Sprint(nf), fmt.Sprintf("%.2f", bw), fmt.Sprintf("%.2f", step),
		})
		if bw > bestBW {
			bestBW, bestLabel = bw, fmt.Sprintf("coIO nf=%d", nf)
		}
	}
	fmt.Println("coIO file-count sweep:")
	fmt.Println(exp.FormatTable([]string{"nf", "GB/s", "step (s)"}, rows))

	fmt.Printf("best configuration on this partition: %s at %.2f GB/s\n", bestLabel, bestBW)
}
