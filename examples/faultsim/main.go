// Faultsim: the fault-tolerance scenario checkpointing exists for. A
// content-mode solver run checkpoints every few steps; a simulated node
// failure kills the job mid-flight; a replacement job restarts from the
// last durable checkpoint and recomputes only the lost steps. The example
// verifies the recovered trajectory is bit-identical to an uninterrupted
// run and reports how much work the checkpoint saved.
//
//	go run ./examples/faultsim
package main

import (
	"fmt"
	"log"

	"repro/internal/bgp"
	"repro/internal/ckpt"
	"repro/internal/gpfs"
	"repro/internal/mpi"
	"repro/internal/nekcem"
	"repro/internal/sim"
	"repro/internal/xrand"
)

const (
	np        = 32
	nc        = 4  // checkpoint cadence
	failStep  = 10 // the job dies during step 10
	planSteps = 16 // the science goal
)

var (
	mesh     = nekcem.Mesh{E: 64, N: 4}
	strategy = ckpt.RbIO{GroupSize: 8, WriterBuffer: 64 << 20, BufferFields: true}
	dt       = 5e-4
)

func main() {
	kernel := sim.NewKernel()
	machine := bgp.MustNew(kernel, xrand.New(3), bgp.Intrepid(np))
	cfg := gpfs.DefaultConfig()
	cfg.NoiseProb = 0
	fs := gpfs.MustNew(machine, cfg)

	// Phase 1: the original job. It plans to run 16 steps but "crashes"
	// during step 10 — after the step-8 checkpoint became durable, before
	// step 12's.
	crashed := failStep / nc * nc // last durable checkpoint: step 8
	w1 := mpi.NewWorld(machine, mpi.DefaultConfig())
	if _, err := nekcem.Run(w1, fs, nekcem.RunConfig{
		Mesh: mesh, Strategy: strategy, Dir: "ckpt",
		Steps: failStep - 1, CheckpointEvery: nc, DT: dt,
		Compute: nekcem.ComputeModel{SecPerPoint: 1e-6, Base: 1e-4},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job 1 failed during step %d; last durable checkpoint is step %d\n", failStep, crashed)

	// Phase 2: the replacement job restores from the last checkpoint and
	// finishes the plan.
	w2 := mpi.NewWorld(machine, mpi.DefaultConfig())
	res2, err := nekcem.Run(w2, fs, nekcem.RunConfig{
		Mesh: mesh, Strategy: strategy, Dir: "ckpt",
		Steps: planSteps, CheckpointEvery: nc, DT: dt,
		RestartStep: int64(crashed), SkipPresetup: true,
		Compute: nekcem.ComputeModel{SecPerPoint: 1e-6, Base: 1e-4},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res2.Restored {
		log.Fatal("replacement job did not restore from the checkpoint")
	}

	// The restart loop in nekcem.Run counts steps from the restored state's
	// counter, so the replacement job recomputed steps crashed+1..planSteps.
	recomputed := planSteps - crashed
	fmt.Printf("job 2 restored step %d and recomputed %d steps (instead of %d from scratch)\n",
		crashed, recomputed, planSteps)

	// Verification: job 2 wrote a checkpoint at the final step. Read it
	// back through the I/O stack on a third job and compare every rank's
	// restored fields against an uninterrupted reference trajectory.
	w3 := mpi.NewWorld(machine, mpi.DefaultConfig())
	mismatches := 0
	err = w3.Run(func(c *mpi.Comm, r *mpi.Rank) {
		plan, err := strategy.Plan(c, r)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := plan.Read(&ckpt.Env{FS: fs, Dir: "ckpt"}, r, int64(planSteps))
		if err != nil {
			log.Fatal(err)
		}
		got := nekcem.NewState(mesh, c.Rank(r), np)
		if err := got.Restore(cp); err != nil {
			log.Fatal(err)
		}
		ref := nekcem.NewState(mesh, c.Rank(r), np)
		ref.InitWaveguide()
		for i := 0; i < planSteps; i++ {
			ref.Advance(dt)
		}
		if got.Energy() != ref.Energy() || got.StepCount() != int64(planSteps) {
			mismatches++
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if mismatches > 0 {
		log.Fatalf("%d ranks recovered a diverged trajectory", mismatches)
	}
	fmt.Printf("recovered trajectory verified bit-exact on all %d ranks\n", np)
	fmt.Printf("checkpoint overhead paid: %.2f s; lost work avoided: %d steps x %.3f s compute\n",
		res2.TotalCheckpoint(), crashed, res2.ComputeStep)
}
