// Waveguide: a content-mode production run of the NekCEM proxy — the real
// spectral-element kernel (GLL nodes, tensor-product derivatives, 5-stage
// Runge-Kutta) advances a 3-D waveguide mode on every rank, checkpoints are
// written through the full simulated I/O stack, and the run then restarts
// from the checkpoint and verifies the restored fields continue the exact
// same trajectory.
//
//	go run ./examples/waveguide
package main

import (
	"fmt"
	"log"

	"repro/internal/bgp"
	"repro/internal/ckpt"
	"repro/internal/gpfs"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/nekcem"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func main() {
	const (
		np    = 64
		steps = 6
		nc    = 3 // checkpoint every 3 steps
	)
	mesh := nekcem.Mesh{E: 128, N: 4} // 2 elements x 125 points per rank
	strategy := ckpt.CoIO{NumFiles: 4, Hints: mpiio.DefaultHints()}

	kernel := sim.NewKernel()
	machine := bgp.MustNew(kernel, xrand.New(7), bgp.Intrepid(np))
	cfg := gpfs.DefaultConfig()
	cfg.NoiseProb = 0 // determinism matters more than realism here
	fs := gpfs.MustNew(machine, cfg)

	// First run: advance six steps, checkpointing at steps 3 and 6.
	w1 := mpi.NewWorld(machine, mpi.DefaultConfig())
	res1, err := nekcem.Run(w1, fs, nekcem.RunConfig{
		Mesh:            mesh,
		Strategy:        strategy,
		Dir:             "out",
		Steps:           steps,
		CheckpointEvery: nc,
		DT:              5e-4,
		Compute:         nekcem.ComputeModel{SecPerPoint: 1e-6, Base: 1e-4},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waveguide run: %d ranks, E=%d N=%d, %d steps\n", np, mesh.E, mesh.N, steps)
	for _, c := range res1.Checkpoints {
		fmt.Printf("  checkpoint @step %d: %.2f MB in %.3f s\n", c.Step, float64(c.Bytes)/1e6, c.StepTime())
	}

	// Reference trajectory: what the fields look like after continuing to
	// step 6, computed directly with the kernel (rank 5's view).
	ref := nekcem.NewState(mesh, 5, np)
	ref.InitWaveguide()
	for i := 0; i < steps; i++ {
		ref.Advance(5e-4)
	}

	// Restart run: a fresh world on the same machine and file system
	// restores from the step-3 checkpoint and advances the remaining steps.
	w2 := mpi.NewWorld(machine, mpi.DefaultConfig())
	var restartEnergy float64
	err = w2.Run(func(c *mpi.Comm, r *mpi.Rank) {
		plan, err := strategy.Plan(c, r)
		if err != nil {
			log.Fatal(err)
		}
		env := &ckpt.Env{FS: fs, Dir: "out"}
		cp, err := plan.Read(env, r, 3)
		if err != nil {
			log.Fatal(err)
		}
		st := nekcem.NewState(mesh, c.Rank(r), np)
		if err := st.Restore(cp); err != nil {
			log.Fatal(err)
		}
		for st.StepCount() < steps {
			st.Advance(5e-4)
		}
		if c.Rank(r) == 5 {
			restartEnergy = st.Energy()
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rank 5 field energy:   continuous run %.12f\n", ref.Energy())
	fmt.Printf("                       restarted run  %.12f\n", restartEnergy)
	if restartEnergy != ref.Energy() {
		log.Fatal("restart diverged from the continuous trajectory")
	}
	fmt.Println("restart is bit-exact: the checkpoint round-tripped through the full I/O stack")
}
