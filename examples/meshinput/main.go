// Meshinput: the input side of a NekCEM run, end to end. The prex/genmap
// toolchain (internal/meshgen) generates the paper's cylindrical-waveguide
// mesh and its element-to-rank map, the real encoded bytes are placed on
// the simulated GPFS, and a 64-rank job performs the presetup the paper
// describes in Section III-B: rank 0 reads the global files, broadcasts
// them, and every rank decodes and picks out its own elements — with the
// decoded data verified against the generator on every rank.
//
//	go run ./examples/meshinput
package main

import (
	"fmt"
	"log"

	"repro/internal/bgp"
	"repro/internal/data"
	"repro/internal/gpfs"
	"repro/internal/meshgen"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func main() {
	const np = 64

	// prex: generate the waveguide geometry. genmap: partition it.
	mesh := meshgen.CylindricalWaveguide(4, 16, 16, 1.0, 10.0)
	part := mesh.Partition(np)
	rea, mp := mesh.EncodeRea(), meshgen.EncodeMap(part)
	fmt.Printf("generated waveguide: E=%d elements, %d vertices\n", mesh.NumElems(), len(mesh.Verts))
	fmt.Printf("partition: %d ranks, edge cut %d faces\n", np, mesh.EdgeCut(part))

	// The input files live on the parallel file system before the job runs.
	kernel := sim.NewKernel()
	machine := bgp.MustNew(kernel, xrand.New(5), bgp.Intrepid(np))
	cfg := gpfs.DefaultConfig()
	cfg.NoiseProb = 0
	fs := gpfs.MustNew(machine, cfg)
	fs.PreloadBytes("in/waveguide.rea", rea)
	fs.PreloadBytes("in/waveguide.map", mp)

	// Presetup: rank 0 reads the global files and broadcasts them; every
	// rank decodes and extracts its local elements.
	world := mpi.NewWorld(machine, mpi.DefaultConfig())
	var presetup float64
	perRank := make([]int, np)
	mismatches := 0
	err := world.Run(func(c *mpi.Comm, r *mpi.Rank) {
		p := r.Proc()
		var reaBuf, mapBuf data.Buf
		if c.Rank(r) == 0 {
			for _, f := range []struct {
				path string
				dst  *data.Buf
			}{{"in/waveguide.rea", &reaBuf}, {"in/waveguide.map", &mapBuf}} {
				h, err := fs.Open(p, r.ID(), f.path)
				if err != nil {
					log.Fatal(err)
				}
				buf, err := h.ReadAt(p, r.ID(), 0, h.Size())
				if err != nil {
					log.Fatal(err)
				}
				h.Close(p, r.ID())
				*f.dst = buf
			}
		}
		reaBuf = c.Bcast(r, 0, reaBuf)
		mapBuf = c.Bcast(r, 0, mapBuf)

		gotMesh, err := meshgen.DecodeRea(reaBuf.Bytes())
		if err != nil {
			log.Fatalf("rank %d: %v", r.ID(), err)
		}
		gotPart, err := meshgen.DecodeMap(mapBuf.Bytes())
		if err != nil {
			log.Fatalf("rank %d: %v", r.ID(), err)
		}
		// Verify the bytes survived the file system and broadcast intact.
		if gotMesh.NumElems() != mesh.NumElems() || len(gotPart) != len(part) {
			mismatches++
		}
		mine := 0
		for e, owner := range gotPart {
			if owner != part[e] {
				mismatches++
			}
			if owner == c.Rank(r) {
				mine++
			}
		}
		perRank[c.Rank(r)] = mine
		c.Barrier(r)
		if c.Rank(r) == 0 {
			presetup = r.Now()
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if mismatches > 0 {
		log.Fatalf("%d decode mismatches after the simulated read+broadcast", mismatches)
	}

	minE, maxE := perRank[0], perRank[0]
	for _, n := range perRank {
		if n < minE {
			minE = n
		}
		if n > maxE {
			maxE = n
		}
	}
	fmt.Printf("presetup on %d ranks took %.3f s simulated (read + broadcast + decode)\n", np, presetup)
	fmt.Printf("every rank decoded the identical global mesh; local loads %d..%d elements\n", minE, maxE)
}
