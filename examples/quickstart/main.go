// Quickstart: build a simulated Blue Gene/P partition, run one coordinated
// checkpoint of the NekCEM proxy with the paper's rbIO strategy, and print
// what the paper's Figures 5-7 would show for it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bgp"
	"repro/internal/ckpt"
	"repro/internal/gpfs"
	"repro/internal/mpi"
	"repro/internal/nekcem"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func main() {
	// A 1024-rank partition (256 quad-core nodes, 4 psets) of the Intrepid
	// machine model, with its GPFS and an MPI runtime on top. Everything is
	// driven by one deterministic discrete-event kernel.
	const np = 1024
	kernel := sim.NewKernel()
	machine := bgp.MustNew(kernel, xrand.New(42), bgp.Intrepid(np))
	fs := gpfs.MustNew(machine, gpfs.DefaultConfig())
	world := mpi.NewWorld(machine, mpi.DefaultConfig())

	// The paper's headline strategy: reduced-blocking I/O with one dedicated
	// writer per 64 ranks, each writer committing its own file (nf = ng).
	strategy := ckpt.DefaultRbIO()

	// Run one solver step and one checkpoint of the paper's weak-scaling
	// problem (~2.5 MB of field data per rank).
	res, err := nekcem.Run(world, fs, nekcem.RunConfig{
		Mesh:            nekcem.PaperMesh(np),
		Strategy:        strategy,
		Dir:             "ckpt",
		Steps:           1,
		CheckpointEvery: 1,
		Synthetic:       true, // sizes-only payloads; see examples/waveguide for real data
		SkipPresetup:    true,
		PayloadFactor:   nekcem.PaperPayloadFactor,
		Compute:         nekcem.DefaultComputeModel(),
	})
	if err != nil {
		log.Fatal(err)
	}

	c := res.Checkpoints[0]
	fmt.Printf("checkpointed %.2f GB from %d ranks with %s\n", float64(c.Bytes)/1e9, np, strategy.Name())
	fmt.Printf("  checkpoint step time: %.2f s  (write bandwidth %.2f GB/s)\n", c.StepTime(), c.Bandwidth()/1e9)
	fmt.Printf("  slowest worker was blocked only %.3f ms (perceived bandwidth %.0f TB/s)\n",
		c.MaxWorker*1e3, c.PerceivedBandwidth()/1e12)
	fmt.Printf("  slowest writer spent %.2f s aggregating and committing\n", c.MaxWriter)
	fmt.Printf("  checkpoint/compute ratio: %.0f\n", c.StepTime()/res.ComputeStep)
	fmt.Printf("  files created on GPFS: %d\n", fs.NumFiles())
}
