// Command iolog analyzes a Darshan-style I/O trace written by cmd/nekcem
// (-log): aggregate statistics, the per-rank time distribution (Figures
// 9-11 of the paper) and the write-activity timeline (Figure 12). With
// -metrics it instead reads a simulation trace written by `iobench -trace`
// and prints each run's aggregated per-layer metrics tables.
//
// Usage:
//
//	nekcem -np 4096 -strategy rbio -log trace.json
//	iolog trace.json
//	iolog -ranks 4096 -dt 0.25 trace.json
//	iobench -exp fig5 -trace sim.json && iolog -metrics sim.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/exp"
	"repro/internal/iolog"
	"repro/internal/trace"
)

func main() {
	var (
		ranks   = flag.Int("ranks", 0, "rank count for the distribution (0: infer from the trace)")
		dt      = flag.Float64("dt", 0.5, "activity timeline bin width in seconds")
		metrics = flag.Bool("metrics", false, "treat the argument as an iobench -trace file and print its per-run metrics tables")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iolog [flags] trace.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metrics {
		tf, err := trace.ReadFile(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(tf.Metrics) == 0 {
			fmt.Fprintln(os.Stderr, "iolog: no metrics in trace (written by an older iobench?)")
			os.Exit(1)
		}
		for _, m := range tf.Metrics {
			fmt.Printf("%s\n", m.Table())
		}
		return
	}
	log, err := iolog.ReadJSON(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	s := log.Summarize()
	fmt.Printf("trace: %d records, %.2f GB written, %.2f GB read, span [%.2f, %.2f] s, write bandwidth %.2f GB/s\n\n",
		s.Ops, float64(s.BytesWritten)/1e9, float64(s.BytesRead)/1e9, s.FirstStart, s.LastEnd, s.Bandwidth/1e9)

	n := *ranks
	if n == 0 {
		for _, rec := range log.Records {
			if rec.Rank >= n {
				n = rec.Rank + 1
			}
		}
	}

	times := log.PerRankTime(n)
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	qs := iolog.Quantiles(times, 0, 0.25, 0.5, 0.75, 0.95, 1)
	fmt.Println("per-rank I/O time distribution (Figures 9-11 style):")
	fmt.Println(exp.FormatTable(
		[]string{"min", "p25", "median", "p75", "p95", "max"},
		[][]string{{
			fmt.Sprintf("%.3f", qs[0]), fmt.Sprintf("%.3f", qs[1]),
			fmt.Sprintf("%.3f", qs[2]), fmt.Sprintf("%.3f", qs[3]),
			fmt.Sprintf("%.3f", qs[4]), fmt.Sprintf("%.3f", qs[5]),
		}}))

	fmt.Println("write-activity timeline (Figure 12 style):")
	rows := [][]string{}
	for _, bin := range log.Activity(*dt, iolog.OpWrite) {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", bin.T),
			fmt.Sprint(bin.Writers),
			fmt.Sprintf("%.1f", float64(bin.Bytes) / *dt / 1e6),
		})
	}
	fmt.Println(exp.FormatTable([]string{"t (s)", "active writers", "MB/s"}, rows))
}
