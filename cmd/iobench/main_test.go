package main

import (
	"errors"
	"testing"

	"repro/internal/ckpt"
)

// TestValidateCkptFlag pins the -ckpt exit-2 surface: empty (all headline
// arms), registry names, and aliases pass; unknown names fail with the
// registry's typed error.
func TestValidateCkptFlag(t *testing.T) {
	for _, name := range []string{"", "rbio", "coio1", "async", "ml"} {
		if err := validateCkptFlag(name); err != nil {
			t.Errorf("validateCkptFlag(%q) = %v", name, err)
		}
	}
	err := validateCkptFlag("mpiio")
	var ue *ckpt.UnknownStrategyError
	if !errors.As(err, &ue) {
		t.Fatalf("unknown -ckpt returned %v, want *ckpt.UnknownStrategyError", err)
	}
}

func TestValidateLifecycleFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name    string
		epochs  int
		work    int
		set     map[string]bool
		wantErr bool
	}{
		{"defaults pass", 0, 0, set(), false},
		{"positive values pass", 12, 120, set("epochs", "work"), false},
		{"explicit zero epochs rejected", 0, 0, set("epochs"), true},
		{"explicit negative epochs rejected", -3, 0, set("epochs"), true},
		{"explicit zero work rejected", 0, 0, set("work"), true},
		{"explicit negative work rejected", 0, -1, set("work"), true},
		{"one bad one good still rejected", 12, -1, set("epochs", "work"), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateLifecycleFlags(c.epochs, c.work, c.set)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateLifecycleFlags(%d, %d, %v) = %v, wantErr %v",
					c.epochs, c.work, c.set, err, c.wantErr)
			}
		})
	}
}
