// Command iobench regenerates the paper's evaluation: every figure and
// table of "Parallel I/O Performance for Application-Level Checkpointing on
// the Blue Gene/P System" (CLUSTER 2011), run against the simulated
// Intrepid machine.
//
// Usage:
//
//	iobench                  # everything at paper scale (slow: ~30-60 min)
//	iobench -exp fig5        # one experiment (fig5..fig12, table1, eq1, eq7, meshread, ablations)
//	iobench -np 4096         # scaled-down sweep for a quick look
//	iobench -quiet           # disable the shared-storage noise model
//	iobench -seed 7          # different reproducible noise sample
//	iobench -fs bbuf         # run the checkpoint experiments on another backend
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/perf"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment to run: all, "+strings.Join(expNames, ", "))
		np       = flag.Int("np", 0, "override the processor sweep with a single count (0 = paper scale 16K/32K/64K)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		quiet    = flag.Bool("quiet", false, "disable the shared-storage noise model")
		parallel = flag.Int("parallel", runtime.NumCPU(), "experiment worker-pool size (1 = serial); results are identical at any setting")
		fsName   = flag.String("fs", "gpfs", "storage backend for checkpoint experiments: gpfs, pvfs, bbuf (fscompare, drainoverlap and the GPFS-knob ablations/priorwork pick their own backends)")
		mtbf     = flag.Float64("mtbf", 6, "per-component MTBF in hours for the fault experiments (faultsweep, makespan)")
	)
	flag.Parse()
	perf.TuneGC()

	if !exp.KnownFS(*fsName) {
		fmt.Fprintf(os.Stderr, "unknown file system %q (valid: %s)\n", *fsName, strings.Join(exp.FileSystems, ", "))
		os.Exit(2)
	}
	if !knownExp(*which) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: all, %s)\n", *which, strings.Join(expNames, ", "))
		os.Exit(2)
	}

	o := exp.Options{Seed: *seed, Quiet: *quiet, Parallel: *parallel, FS: *fsName}
	if *np > 0 {
		o.NPs = []int{*np}
	}

	// run executes fn when -exp selects it: by its own name, "all", or any
	// alias (the headline runs serve fig5, fig6 and fig7).
	run := func(name string, fn func() error, aliases ...string) {
		match := *which == "all" || *which == name
		for _, a := range aliases {
			match = match || *which == a
		}
		if !match {
			return
		}
		t0 := time.Now()
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	// Figures 5-7 share the headline runs.
	var headline []exp.HeadlineRow
	needHeadline := *which == "all" || *which == "fig5" || *which == "fig6" || *which == "fig7"
	if needHeadline {
		run("headline (figs 5-7)", func() error {
			var err error
			headline, err = exp.Headline(o)
			return err
		}, "fig5", "fig6", "fig7")
	}
	if headline != nil {
		if *which == "all" || *which == "fig5" {
			fmt.Println("== Figure 5: write bandwidth ==")
			fmt.Println(exp.Fig5Table(headline))
		}
		if *which == "all" || *which == "fig6" {
			fmt.Println("== Figure 6: overall time per checkpoint step ==")
			fmt.Println(exp.Fig6Table(headline))
		}
		if *which == "all" || *which == "fig7" {
			fmt.Println("== Figure 7: checkpoint/computation ratio ==")
			fmt.Println(exp.Fig7Table(headline))
		}
	}

	run("fig8", func() error {
		rows, err := exp.Fig8(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 8: rbIO bandwidth vs number of files ==")
		fmt.Println(exp.Fig8Table(rows))
		return nil
	})

	run("fig9", func() error {
		d, err := exp.Fig9(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 9: per-rank I/O time distribution, 1PFPP ==")
		fmt.Println(d.Table())
		fmt.Println(d.Plot())
		return nil
	})
	run("fig10", func() error {
		d, err := exp.Fig10(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 10: per-rank I/O time distribution, coIO 64:1 ==")
		fmt.Println(d.Table())
		fmt.Println(d.Plot())
		return nil
	})
	run("fig11", func() error {
		d, err := exp.Fig11(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 11: per-rank I/O time distribution, rbIO ==")
		fmt.Println(d.Table())
		fmt.Println(d.Plot())
		return nil
	})
	run("fig12", func() error {
		rows, err := exp.Fig12(o)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 12: write activity, rbIO vs coIO ==")
		fmt.Println(exp.Fig12Table(rows))
		return nil
	})

	run("table1", func() error {
		rows, err := exp.TableI(o)
		if err != nil {
			return err
		}
		fmt.Println("== Table I: perceived write performance (rbIO) ==")
		fmt.Println(exp.TableITable(rows))
		return nil
	})

	run("eq1", func() error {
		np16 := 16384
		if len(o.NPs) == 1 {
			np16 = o.NPs[0]
		}
		res, err := exp.Eq1(o, np16, 20)
		if err != nil {
			return err
		}
		fmt.Println("== Equation 1: production improvement, rbIO over 1PFPP ==")
		fmt.Println(res.Table())
		return nil
	})

	run("eq7", func() error {
		np16 := 16384
		if len(o.NPs) == 1 {
			np16 = o.NPs[0]
		}
		res, err := exp.Speedup(o, np16)
		if err != nil {
			return err
		}
		fmt.Println("== Equations 2-7: blocked-time speedup, rbIO over coIO ==")
		fmt.Println(res.Table())
		return nil
	})

	run("meshread", func() error {
		cases := []exp.MeshReadRow{}
		if len(o.NPs) == 1 {
			cases = append(cases,
				exp.MeshReadRow{E: 136 * 1024, NP: o.NPs[0]},
				exp.MeshReadRow{E: 546 * 1024, NP: o.NPs[0]})
		}
		rows, err := exp.MeshRead(o, cases...)
		if err != nil {
			return err
		}
		fmt.Println("== Section III-B: global mesh read (presetup) ==")
		fmt.Println(exp.MeshReadTable(rows))
		return nil
	})

	run("fscompare", func() error {
		np16 := 16384
		if len(o.NPs) == 1 {
			np16 = o.NPs[0]
		}
		rows, err := exp.FSComparison(o, np16)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: GPFS vs PVFS (Section V-C1's unpublished comparison) ==")
		fmt.Println(exp.FSComparisonTable(rows))
		return nil
	})

	run("drainoverlap", func() error {
		np16 := 16384
		if len(o.NPs) == 1 {
			np16 = o.NPs[0]
		}
		rows, err := exp.DrainOverlap(o, np16)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: rbIO commit overlap, GPFS write-behind vs ION burst buffer ==")
		fmt.Println(exp.DrainOverlapTable(rows))
		return nil
	})

	run("priorwork", func() error {
		rows, err := exp.PriorWorkBGL(o)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: prior work [3] — rbIO on 32K Blue Gene/L ==")
		fmt.Println(exp.PriorWorkTable(rows))
		return nil
	})

	run("restart", func() error {
		np16 := 16384
		if len(o.NPs) == 1 {
			np16 = o.NPs[0]
		}
		rows, err := exp.RestartStudy(o, np16)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: restart (read-side) performance ==")
		fmt.Println(exp.RestartTable(rows))
		return nil
	})

	run("multilevel", func() error {
		np16 := 16384
		if len(o.NPs) == 1 {
			np16 = o.NPs[0]
		}
		rows, err := exp.MultiLevelStudy(o, np16)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: SCR-style multi-level checkpointing ==")
		fmt.Println(exp.MultiLevelTable(rows))
		return nil
	})

	run("faultsweep", func() error {
		np2 := 2048
		if len(o.NPs) == 1 {
			np2 = o.NPs[0]
		}
		rows, err := exp.FaultSweep(o, np2, *mtbf)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: checkpoint survivability under injected faults ==")
		fmt.Println(exp.FaultTable(rows))
		return nil
	})

	run("makespan", func() error {
		np2 := 2048
		if len(o.NPs) == 1 {
			np2 = o.NPs[0]
		}
		rows, err := exp.Makespan(o, np2, *mtbf)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: expected makespan (Daly model on measured C and R) ==")
		fmt.Println(exp.MakespanTable(rows))
		return nil
	})

	run("ablations", func() error {
		np16, np64 := 16384, 65536
		if len(o.NPs) == 1 {
			np16, np64 = o.NPs[0], o.NPs[0]
		}
		var all []exp.AblationRow
		for _, f := range []func() ([]exp.AblationRow, error){
			func() ([]exp.AblationRow, error) { return exp.AblateAlignment(o, np16) },
			func() ([]exp.AblationRow, error) { return exp.AblateWriterBuffer(o, np16) },
			func() ([]exp.AblationRow, error) { return exp.AblateGroupRatio(o, np16) },
			func() ([]exp.AblationRow, error) { return exp.AblateIONCache(o, np16) },
			func() ([]exp.AblationRow, error) { return exp.AblateNoise(o, np64) },
			func() ([]exp.AblationRow, error) { return exp.AblateBlockSize(o, np16) },
		} {
			rows, err := f()
			if err != nil {
				return err
			}
			all = append(all, rows...)
		}
		fmt.Println("== Design-choice ablations ==")
		fmt.Println(exp.AblationTable(all))
		return nil
	})

}

// expNames is the single registry of experiment names: the -exp flag is
// validated against it up front (like -fs), so a typo exits 2 with the valid
// set before any simulation starts.
var expNames = []string{
	"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	"table1", "eq1", "eq7", "meshread", "fscompare", "drainoverlap",
	"priorwork", "restart", "multilevel", "faultsweep", "makespan",
	"ablations",
}

// knownExp reports whether name selects an experiment ("all" included).
func knownExp(name string) bool {
	if name == "all" {
		return true
	}
	for _, k := range expNames {
		if name == k {
			return true
		}
	}
	return false
}
