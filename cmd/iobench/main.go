// Command iobench regenerates the paper's evaluation: every figure and
// table of "Parallel I/O Performance for Application-Level Checkpointing on
// the Blue Gene/P System" (CLUSTER 2011), run against the simulated
// Intrepid machine.
//
// Usage:
//
//	iobench                  # everything at paper scale (slow: ~30-60 min)
//	iobench -exp fig5        # one experiment (iobench -exp list for the set)
//	iobench -exp list        # list experiments with their descriptions
//	iobench -np 4096         # scaled-down sweep for a quick look
//	iobench -quiet           # disable the shared-storage noise model
//	iobench -seed 7          # different reproducible noise sample
//	iobench -fs bbuf         # run the checkpoint experiments on another backend
//	iobench -fs bbuf -bb 4x0.25 -drain deadline      # shared 4-node burst-buffer fleet
//	iobench -machine bgl     # run on another machine preset (bgl, fattree, dragonfly)
//	iobench -map xyzt        # override the rank->node placement policy
//	iobench -trace out.json  # emit a Chrome/Perfetto trace of every run
//	iobench -metrics         # print per-layer simulated-time and span tables
//	iobench -exp ckptstorm -tenants 4 -np 1024       # colliding tenant checkpoints
//	iobench -exp workload -workload jobs=6,np=256:1024,gap=1.5  # queued job mix
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bbuf"
	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/fsys"
	"repro/internal/machine"
	"repro/internal/perf"

	_ "repro/internal/bgp" // registers the Blue Gene machine presets
)

func main() {
	var (
		which     = flag.String("exp", "all", "experiment to run (list = print the registry)")
		np        = flag.Int("np", 0, "override the processor sweep with a single count (0 = paper scale 16K/32K/64K)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		quiet     = flag.Bool("quiet", false, "disable the shared-storage noise model")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "experiment worker-pool size (1 = serial); results are identical at any setting")
		shards    = flag.Int("shards", 0, "partitioned-kernel lane workers inside each simulation (0 or 1 = serial kernel); results are identical at any setting")
		fsName    = flag.String("fs", "gpfs", "storage backend for checkpoint experiments: gpfs, pvfs, bbuf (fscompare, drainoverlap and the GPFS-knob ablations/priorwork pick their own backends)")
		ckptName  = flag.String("ckpt", "", "restrict the headline sweeps (fig5/fig6/fig7) to one ckpt-registry strategy: 1pfpp, coio1, coio, rbio1, rbio, multilevel, async (\"\" = all five headline arms)")
		machName  = flag.String("machine", "", "machine preset for checkpoint experiments: intrepid (default), bgl, fattree, dragonfly (priorwork pins its own machines)")
		mapName   = flag.String("map", "", "rank->node placement policy override: txyz (machine default), xyzt, blocked, roundrobin, random")
		bbSpec    = flag.String("bb", "", "burst-buffer fleet spec <nodes>x<gbps> for -fs bbuf (e.g. 8x0.25); \"\" = one private node per ION at the default bandwidth")
		drainName = flag.String("drain", "", "burst-buffer drain-scheduler policy for -fs bbuf: fifo (default), deadline, tenant")
		mtbf      = flag.Float64("mtbf", 6, "per-component MTBF in hours for the fault experiments (faultsweep, makespan, recovery)")
		epochs    = flag.Int("epochs", 0, "checkpoint epochs over the recovery lifecycle's work budget (0 = default 12)")
		workSteps = flag.Int("work", 0, "solver-step work budget for -exp recovery (0 = default 120)")
		manifests = flag.Bool("manifests", false, "attach epoch-manifest recording to every checkpoint run (results are byte-identical; used by the golden-diff CI step)")
		tenants   = flag.Int("tenants", 0, "concurrent tenant jobs for the multi-tenant experiments (ckptstorm, restartstorm); 0 = default 2")
		workload  = flag.String("workload", "", "workload generator spec for -exp workload: key=value pairs over jobs, np (min:max), gap, steps, seed, strategy")
		traceOut  = flag.String("trace", "", "write a Chrome/Perfetto trace_event JSON of every simulation run to this file (load at ui.perfetto.dev)")
		metrics   = flag.Bool("metrics", false, "print per-run aggregated metrics (per-layer simulated time, counters, span stats)")
		traceEvts = flag.Int("trace-events", 0, "per-run retained trace event cap (0 = default 1M; aggregates keep counting past the cap)")
	)
	flag.Parse()
	perf.TuneGC()

	if *which == "list" {
		listExperiments()
		return
	}

	backend, err := fsys.Lookup(*fsName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := machine.Lookup(*machName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := machine.ValidatePlacement(*mapName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "invalid -shards %d (want >= 0; 0 or 1 = serial kernel)\n", *shards)
		os.Exit(2)
	}
	if *tenants < 0 {
		fmt.Fprintf(os.Stderr, "invalid -tenants %d (want >= 1; 0 = default 2)\n", *tenants)
		os.Exit(2)
	}
	if err := validateLifecycleFlags(*epochs, *workSteps, setFlags()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := cluster.ParseWorkload(*workload); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := validateCkptFlag(*ckptName); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bbNodes, bbGbps, err := bbuf.ParseFleetSpec(*bbSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *drainName != "" {
		if _, err := bbuf.Lookup(*drainName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if _, ok := exp.LookupExperiment(*which); !ok && *which != "all" {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: all, list", *which)
		for _, d := range exp.Experiments() {
			fmt.Fprintf(os.Stderr, ", %s", d.Name)
		}
		fmt.Fprintln(os.Stderr, ")")
		os.Exit(2)
	}

	opts := []exp.Option{
		exp.Seed(*seed),
		exp.Backend(backend),
		exp.Parallel(*parallel),
		exp.Shards(*shards),
		exp.Machine(*machName),
		exp.Map(*mapName),
		exp.Ckpt(*ckptName),
		exp.BB(bbNodes, bbGbps),
		exp.Drain(*drainName),
	}
	if *quiet {
		opts = append(opts, exp.Quiet())
	}
	if *np > 0 {
		opts = append(opts, exp.NPs(*np))
	}
	if *manifests {
		opts = append(opts, exp.Manifests())
	}
	var tc *exp.TraceCollector
	if *traceOut != "" || *metrics {
		tc = &exp.TraceCollector{MaxEvents: *traceEvts}
		opts = append(opts, exp.Trace(tc))
	}
	o := exp.New(opts...)

	s := exp.NewSession(o, os.Stdout)
	s.MTBF = *mtbf
	s.Tenants = *tenants
	s.Workload = *workload
	s.Epochs = *epochs
	s.Work = *workSteps
	for _, d := range exp.Experiments() {
		if *which != "all" && !selects(d, *which) {
			continue
		}
		t0 := time.Now()
		fmt.Printf("== %s ==\n", d.Name)
		if err := d.Run(s); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.Name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s wall)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	if *metrics && tc != nil {
		for _, m := range tc.Metrics() {
			fmt.Printf("%s\n", m.Table())
		}
	}
	if *traceOut != "" && tc != nil {
		if err := writeTrace(tc, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (load at ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
}

// setFlags returns the names of the flags the command line set explicitly.
func setFlags() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// validateLifecycleFlags rejects explicit non-positive -epochs/-work values
// (their zero defaults mean "use the experiment's default budget").
func validateLifecycleFlags(epochs, work int, set map[string]bool) error {
	if set["epochs"] && epochs <= 0 {
		return fmt.Errorf("invalid -epochs %d (want >= 1; omit for the default 12)", epochs)
	}
	if set["work"] && work <= 0 {
		return fmt.Errorf("invalid -work %d (want >= 1; omit for the default 120)", work)
	}
	return nil
}

// validateCkptFlag rejects a -ckpt value the registry does not know; the
// empty default means "all headline arms" and always passes.
func validateCkptFlag(name string) error {
	if name == "" {
		return nil
	}
	_, err := ckpt.Lookup(name)
	return err
}

// selects reports whether name picks descriptor d (by name or alias).
func selects(d exp.Descriptor, name string) bool {
	if d.Name == name {
		return true
	}
	for _, a := range d.Aliases {
		if a == name {
			return true
		}
	}
	return false
}

func listExperiments() {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "experiments (iobench -exp <name>):")
	for _, d := range exp.Experiments() {
		flags := ""
		if d.Flags != "" {
			flags = "  [" + d.Flags + "]"
		}
		fmt.Fprintf(w, "  %-14s %s%s\n", d.Name, d.Doc, flags)
	}
}

func writeTrace(tc *exp.TraceCollector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tc.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
