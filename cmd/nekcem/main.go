// Command nekcem runs a production simulation of the NekCEM proxy end to
// end: presetup (global mesh read), time stepping, and periodic coordinated
// checkpoints with a selectable I/O strategy, on a simulated Blue Gene/P
// partition with GPFS.
//
// Usage:
//
//	nekcem -np 16384 -steps 40 -ckpt-every 20 -ckpt rbio
//	nekcem -np 1024 -ckpt coio -nf 16 -log trace.json
//	nekcem -np 4096 -ckpt async      # non-blocking checkpoints, background flush
//	nekcem -np 2048 -fs bbuf -bb 4x0.25 -drain deadline  # shared burst-buffer fleet
//	nekcem -np 64 -content           # real SEDG kernel, bit-exact restart check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bbuf"
	"repro/internal/bgp"
	"repro/internal/ckpt"
	"repro/internal/exp"
	"repro/internal/fsys"
	"repro/internal/iolog"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/nekcem"
	"repro/internal/recover"
	"repro/internal/sim"
	"repro/internal/xrand"

	// Backends self-register with the fsys registry from their package
	// inits; the bbuf import also provides the -bb/-drain validators.
	_ "repro/internal/gpfs"
	_ "repro/internal/pvfs"
)

func main() {
	var (
		np       = flag.Int("np", 4096, "MPI ranks (power-of-two nodes, 4 ranks/node)")
		steps    = flag.Int("steps", 20, "solver time steps")
		every    = flag.Int("ckpt-every", 20, "checkpoint every N steps (0: never)")
		ckptName = flag.String("ckpt", "", "checkpoint strategy from the ckpt registry: 1pfpp, coio1, coio, rbio1, rbio, multilevel, async (default rbio)")
		strategy = flag.String("strategy", "", "synonym for -ckpt (kept for older scripts)")
		fsName   = flag.String("fs", "gpfs", "storage backend from the fsys registry: gpfs, pvfs, bbuf")
		bbSpec   = flag.String("bb", "", "burst-buffer fleet spec <nodes>x<gbps> for -fs bbuf (e.g. 8x0.25); \"\" = one private node per ION at the default bandwidth")
		drain    = flag.String("drain", "", "burst-buffer drain-scheduler policy for -fs bbuf: fifo (default), deadline, tenant")
		nf       = flag.Int("nf", 0, "coio: number of files (default np/64); rbio: np/ng group count")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		machName = flag.String("machine", "", "machine preset: intrepid (default), bgl, fattree, dragonfly")
		mapName  = flag.String("map", "", "rank->node placement policy: txyz (default), xyzt, blocked, roundrobin, random")
		quiet    = flag.Bool("quiet", false, "disable shared-storage noise")
		shards   = flag.Int("shards", 0, "partitioned-kernel lane workers (0 or 1 = serial kernel; results are identical at any setting; ignored with -log)")
		content  = flag.Bool("content", false, "content mode: run the real SEDG kernel and verify restart bit-for-bit (small np)")
		logPath  = flag.String("log", "", "write a Darshan-style I/O trace (JSON) to this file")
		elems    = flag.Int("elements", 0, "mesh elements (default: paper weak scaling, ~4.25/rank at N=15)")
		order    = flag.Int("order", 0, "polynomial order N (default 15; content mode default 4)")
		workStps = flag.Int("work", 0, "solver-step work budget; with -epochs, overrides -steps/-ckpt-every and records epoch manifests (0 = off)")
		epochs   = flag.Int("epochs", 0, "checkpoint epochs over the -work budget (0 = off)")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "invalid -shards %d (want >= 0; 0 or 1 = serial kernel)\n", *shards)
		os.Exit(2)
	}
	backend, err := fsys.Lookup(*fsName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	bbNodes, bbGbps, err := bbuf.ParseFleetSpec(*bbSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *drain != "" {
		if _, err := bbuf.Lookup(*drain); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if err := validateLifecycleFlags(*epochs, *workStps, setFlags()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *workStps > 0 && *epochs > 0 {
		*steps = *workStps
		*every = *workStps / *epochs
		if *every < 1 {
			*every = 1
		}
	}

	mesh := nekcem.PaperMesh(*np)
	if *content {
		mesh = nekcem.Mesh{E: 2 * *np, N: 4}
	}
	if *elems > 0 {
		mesh.E = *elems
	}
	if *order > 0 {
		mesh.N = *order
	}

	strat, err := resolveStrategy(*ckptName, *strategy, *np, *nf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	k := sim.NewKernel()
	desc, err := machine.Lookup(*machName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mcfg := desc.Config(*np)
	if *mapName != "" {
		mcfg.Placement = *mapName
		mcfg.PlacementSeed = *seed
	}
	m, err := bgp.New(k, xrand.New(*seed), mcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The partitioned kernel must be enabled before any process spawns
	// (storage servers included); per-op logging appends from every rank and
	// stays serial.
	if *shards > 1 && *logPath == "" && m.NumPsets() > 1 {
		k.EnableSharding(m.NumPsets(), *shards, m.Lookahead(), *seed)
	}
	fs, err := fsys.Mount(backend, m, fsys.MountOptions{
		Quiet:     *quiet,
		BBNodes:   bbNodes,
		BBDrainBW: bbGbps * 1e9,
		Drain:     *drain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if k.Sharded() {
		// Storage state is global to the machine: route every time-charging
		// file-system call through the exclusive lane.
		fs = fsys.Guard(fs)
	}
	w := mpi.NewWorld(m, mpi.DefaultConfig())

	var log *iolog.Log
	if *logPath != "" {
		log = &iolog.Log{}
	}

	payload := nekcem.PaperPayloadFactor
	if *content {
		payload = 1
	}
	var mlog *recover.Log
	var seg *recover.Segment
	if *workStps > 0 && *epochs > 0 {
		mlog = recover.NewLog(*seed, *np)
		if di, ok := fsys.AsDrainInfo(fs); ok {
			// Burst-buffer backend: an epoch seals only once the fleet is
			// expected to have drained it — absorption is not durability.
			mlog.SetCommitGate(func(t float64) float64 {
				if h := di.DrainHorizon(); h > t {
					return h
				}
				return t
			})
		}
		seg = mlog.StartSegment("ckpt", 0, 0)
	}
	rcfg := nekcem.RunConfig{
		Mesh:            mesh,
		Strategy:        strat,
		Dir:             "ckpt",
		Steps:           *steps,
		CheckpointEvery: *every,
		Synthetic:       !*content,
		PayloadFactor:   payload,
		Compute:         nekcem.DefaultComputeModel(),
		Log:             log,
	}
	if seg != nil {
		rcfg.Epochs = seg
	}
	res, err := nekcem.Run(w, fs, rcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("NekCEM production run: np=%d E=%d N=%d strategy=%s\n", *np, mesh.E, mesh.N, strat.Name())
	fmt.Printf("  presetup (mesh read):   %8.2f s\n", res.Presetup)
	fmt.Printf("  compute per step:       %8.3f s\n", res.ComputeStep)
	fmt.Printf("  simulated wall time:    %8.2f s for %d steps\n", res.Wall, *steps)
	for _, c := range res.Checkpoints {
		fmt.Printf("  checkpoint @step %-5d  %8.2f s  %7.2f GB  %6.2f GB/s", c.Step, c.StepTime(), float64(c.Bytes)/1e9, exp.GB(c.Bandwidth()))
		if pb := c.PerceivedBandwidth(); pb > 0 {
			fmt.Printf("  (perceived %.0f TB/s, workers blocked <= %.1f ms)", pb/1e12, c.MaxWorker*1e3)
		}
		if c.AsyncRanks > 0 {
			fmt.Printf("  (solver blocked %.1f ms, flush durable %.2f s after snapshot)", c.BlockedTime()*1e3, c.MaxDurable-c.MaxEnd)
		}
		fmt.Println()
	}
	fmt.Printf("  files on %s: %d\n", fs.Name(), fs.NumFiles())
	if mlog != nil {
		seg.Close()
		sealed, torn := 0, 0
		for _, e := range mlog.Epochs(ckpt.LevelGlobal) {
			if e.Sealed() {
				sealed++
			} else {
				torn++
			}
		}
		fmt.Printf("  epoch manifests: %d sealed, %d torn\n", sealed, torn)
	}

	if log != nil {
		writeLog(log, *logPath)
	}
}

// resolveStrategy builds the run's checkpoint strategy from the -ckpt flag
// (falling back to the legacy -strategy spelling) via the ckpt registry. A
// positive -nf refines the registry configuration: file count for coIO,
// np:ng group count for rbIO; strategies without a file-count knob ignore
// it, as before.
func resolveStrategy(ckptName, legacy string, np, nf int) (ckpt.Strategy, error) {
	name := ckptName
	if name == "" {
		name = legacy
	}
	d, err := ckpt.Lookup(name)
	if err != nil {
		return nil, err
	}
	strat := d.New(np)
	if nf > 0 {
		switch s := strat.(type) {
		case ckpt.CoIO:
			s.NumFiles = nf
			strat = s
		case ckpt.RbIO:
			s.GroupSize = np / nf
			strat = s
		}
	}
	return strat, nil
}

// setFlags returns the names of the flags the command line set explicitly.
func setFlags() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// validateLifecycleFlags rejects explicit non-positive -epochs/-work values
// (their zero defaults leave -steps/-ckpt-every in charge).
func validateLifecycleFlags(epochs, work int, set map[string]bool) error {
	if set["epochs"] && epochs <= 0 {
		return fmt.Errorf("invalid -epochs %d (want >= 1)", epochs)
	}
	if set["work"] && work <= 0 {
		return fmt.Errorf("invalid -work %d (want >= 1)", work)
	}
	return nil
}

func writeLog(log *iolog.Log, logPath string) {
	f, err := os.Create(logPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := log.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("  I/O trace: %s (%d records)\n", logPath, log.Len())
}
