package main

import (
	"errors"
	"testing"

	"repro/internal/ckpt"
)

// TestResolveStrategy pins the -ckpt/-strategy/-nf resolution the command
// exits 2 on: registry names and aliases build, the legacy -strategy
// spelling still works with -ckpt taking precedence, -nf refines the
// file-count knob, and unknown names surface the registry's typed error.
func TestResolveStrategy(t *testing.T) {
	s, err := resolveStrategy("", "", 4096, 0)
	if err != nil || s.Name() != ckpt.DefaultRbIO().Name() {
		t.Fatalf("default resolution: %v, %v", s, err)
	}
	s, err = resolveStrategy("async", "", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(ckpt.Async); !ok {
		t.Fatalf("-ckpt async built %T", s)
	}
	// Legacy spelling, and -ckpt winning over it.
	s, err = resolveStrategy("", "1pfpp", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(ckpt.OnePFPP); !ok {
		t.Fatalf("-strategy 1pfpp built %T", s)
	}
	s, err = resolveStrategy("coio", "1pfpp", 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(ckpt.CoIO); !ok {
		t.Fatalf("-ckpt did not take precedence over -strategy: built %T", s)
	}
	// -nf refinement.
	s, err = resolveStrategy("coio", "", 4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	if co := s.(ckpt.CoIO); co.NumFiles != 16 {
		t.Fatalf("-nf 16 built coIO with %d files", co.NumFiles)
	}
	s, err = resolveStrategy("rbio", "", 4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rb := s.(ckpt.RbIO); rb.GroupSize != 256 {
		t.Fatalf("-nf 16 built rbIO with group size %d, want 256", rb.GroupSize)
	}
	// The exit-2 path: a typed unknown-strategy error.
	_, err = resolveStrategy("mpiio", "", 4096, 0)
	var ue *ckpt.UnknownStrategyError
	if !errors.As(err, &ue) {
		t.Fatalf("unknown -ckpt returned %v, want *ckpt.UnknownStrategyError", err)
	}
}

func TestValidateLifecycleFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name    string
		epochs  int
		work    int
		set     map[string]bool
		wantErr bool
	}{
		{"defaults pass (lifecycle off)", 0, 0, set(), false},
		{"positive values pass", 4, 40, set("epochs", "work"), false},
		{"explicit zero epochs rejected", 0, 40, set("epochs", "work"), true},
		{"explicit negative epochs rejected", -1, 40, set("epochs"), true},
		{"explicit zero work rejected", 4, 0, set("work"), true},
		{"explicit negative work rejected", 4, -8, set("epochs", "work"), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateLifecycleFlags(c.epochs, c.work, c.set)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateLifecycleFlags(%d, %d, %v) = %v, wantErr %v",
					c.epochs, c.work, c.set, err, c.wantErr)
			}
		})
	}
}
