package main

import "testing"

func TestValidateLifecycleFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name    string
		epochs  int
		work    int
		set     map[string]bool
		wantErr bool
	}{
		{"defaults pass (lifecycle off)", 0, 0, set(), false},
		{"positive values pass", 4, 40, set("epochs", "work"), false},
		{"explicit zero epochs rejected", 0, 40, set("epochs", "work"), true},
		{"explicit negative epochs rejected", -1, 40, set("epochs"), true},
		{"explicit zero work rejected", 4, 0, set("work"), true},
		{"explicit negative work rejected", 4, -8, set("epochs", "work"), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateLifecycleFlags(c.epochs, c.work, c.set)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateLifecycleFlags(%d, %d, %v) = %v, wantErr %v",
					c.epochs, c.work, c.set, err, c.wantErr)
			}
		})
	}
}
