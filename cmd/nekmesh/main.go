// Command nekmesh plays the role of NekCEM's prex/genmap toolchain: it
// generates a hexahedral mesh (box or the paper's cylindrical waveguide),
// partitions it across MPI ranks with recursive coordinate bisection, and
// writes the *.rea / *.map input files a NekCEM run reads at presetup.
//
// Usage:
//
//	nekmesh -geom cyl -nr 4 -nt 16 -nz 32 -np 64 -o waveguide
//	nekmesh -geom box -nx 16 -ny 16 -nz 16 -np 128 -o box
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/meshgen"
)

func main() {
	var (
		geom = flag.String("geom", "cyl", "geometry: box or cyl")
		nx   = flag.Int("nx", 8, "box: elements in x")
		ny   = flag.Int("ny", 8, "box: elements in y")
		nzB  = flag.Int("nz", 8, "elements in z (both geometries)")
		nr   = flag.Int("nr", 4, "cyl: radial element layers")
		nt   = flag.Int("nt", 16, "cyl: angular element layers")
		np   = flag.Int("np", 64, "ranks to partition for")
		out  = flag.String("o", "mesh", "output basename (<o>.rea, <o>.map)")
	)
	flag.Parse()

	var mesh *meshgen.Mesh
	switch *geom {
	case "box":
		mesh = meshgen.Box(*nx, *ny, *nzB, 1, 1, 1)
	case "cyl":
		mesh = meshgen.CylindricalWaveguide(*nr, *nt, *nzB, 1, 10)
	default:
		fmt.Fprintf(os.Stderr, "unknown geometry %q\n", *geom)
		os.Exit(2)
	}

	part := mesh.Partition(*np)
	loads := meshgen.Loads(part, *np)
	minL, maxL := loads[0], loads[0]
	for _, l := range loads {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	rr := make([]int, mesh.NumElems())
	for e := range rr {
		rr[e] = e % *np
	}

	rea, mp := mesh.EncodeRea(), meshgen.EncodeMap(part)
	if err := os.WriteFile(*out+".rea", rea, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out+".map", mp, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("mesh: %s, E=%d elements, %d vertices\n", *geom, mesh.NumElems(), len(mesh.Verts))
	fmt.Printf("partition: np=%d, load %d..%d elements/rank\n", *np, minL, maxL)
	fmt.Printf("edge cut: RCB %d faces (round-robin would cut %d)\n", mesh.EdgeCut(part), mesh.EdgeCut(rr))
	fmt.Printf("wrote %s.rea (%d bytes), %s.map (%d bytes)\n", *out, len(rea), *out, len(mp))
}
