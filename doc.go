// Package repro is a from-scratch Go reproduction of "Parallel I/O
// Performance for Application-Level Checkpointing on the Blue Gene/P
// System" (Fu, Min, Latham, Carothers — CLUSTER 2011).
//
// The repository simulates the full system the paper measured — the Blue
// Gene/P "Intrepid" machine (torus, psets, I/O nodes), a GPFS-like parallel
// file system, an MPI runtime with ROMIO-style two-phase collective I/O,
// and the NekCEM spectral-element solver — and implements the paper's three
// checkpointing strategies (1PFPP, coIO, and the contributed rbIO) on top.
// Every figure and table of the paper's evaluation regenerates from
// cmd/iobench or the benchmarks in bench_test.go.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for
// paper-versus-measured results.
package repro
